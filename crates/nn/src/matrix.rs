//! Row-major dense matrices over `f64`.
//!
//! The three matrix products (`matmul`, `transpose_matmul`,
//! `matmul_transpose`) share one cache-blocked, register-tiled GEMM driver
//! (see [`crate::kernels`]) with a packed right-hand side, an unpacked
//! small-matrix path and an optional row-parallel split. The straightforward
//! triple-loop implementations are kept as `naive_*` references; the tiled
//! kernels reproduce them bit-for-bit for finite inputs because every output
//! element accumulates its products in the same ascending-`k` order.
//!
//! Matrix buffers are recycled through a thread-local scratch pool
//! ([`crate::scratch`]): `Drop` returns the buffer, `zeros`/`resize` and the
//! arithmetic helpers take from it, so steady-state training iterations do
//! not allocate.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::kernels::{self, RhsLayout};
use crate::scratch;

/// A dense, row-major matrix of `f64`.
///
/// Rows are samples, columns are features — the layout every layer in this
/// crate assumes.
///
/// # Examples
///
/// ```
/// use nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        let mut data = scratch::take_buffer(self.data.len());
        data.copy_from_slice(&self.data);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.resize(source.rows, source.cols);
        self.data.copy_from_slice(&source.data);
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros (buffer drawn from the scratch pool).
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: scratch::take_buffer(rows * cols),
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut out = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            out.row_mut(r).copy_from_slice(row);
        }
        out
    }

    /// A `1 × n` matrix holding one sample.
    #[must_use]
    pub fn row_vector(values: &[f64]) -> Self {
        let mut out = Matrix::zeros(1, values.len());
        out.data.copy_from_slice(values);
        out
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reshapes to `rows × cols`, zero-filling the contents. Reuses the
    /// existing buffer (or the scratch pool) instead of reallocating.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.rows = rows;
        self.cols = cols;
        if self.data.len() == len {
            self.data.fill(0.0);
        } else if self.data.capacity() >= len {
            self.data.clear();
            self.data.resize(len, 0.0);
        } else {
            scratch::recycle(std::mem::take(&mut self.data));
            self.data = scratch::take_buffer(len);
        }
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · rhs` (tiled kernel).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self · rhs` into `out`, reusing its buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        out.resize(self.rows, rhs.cols);
        kernels::gemm_plain(
            &self.data,
            self.rows,
            self.cols,
            RhsLayout::Normal(&rhs.data),
            rhs.cols,
            &mut out.data,
        );
    }

    /// `selfᵀ · rhs` without materialising the transpose of `rhs`
    /// (tiled kernel; the left operand is packed once into scratch).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    #[must_use]
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_into(rhs, &mut out);
        out
    }

    /// `selfᵀ · rhs` into `out`, reusing its buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "row counts must agree");
        out.resize(self.cols, rhs.cols);
        // Pack selfᵀ once so the driver sees a plain row-major LHS; the
        // shared dimension keeps its ascending accumulation order, so the
        // result matches `naive_transpose_matmul` bit-for-bit.
        let mut lhs_t = scratch::take_buffer(self.data.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                lhs_t[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        kernels::gemm_plain(
            &lhs_t,
            self.cols,
            self.rows,
            RhsLayout::Normal(&rhs.data),
            rhs.cols,
            &mut out.data,
        );
        scratch::recycle(lhs_t);
    }

    /// `self · rhsᵀ` without materialising the transpose (tiled kernel;
    /// panels are packed directly from the transposed layout).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    #[must_use]
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_into(rhs, &mut out);
        out
    }

    /// `self · rhsᵀ` into `out`, reusing its buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_transpose_fused_into(rhs, out, &|_: &mut [f64]| {});
    }

    /// `self · rhsᵀ` with a fused per-row epilogue: `post` runs once on each
    /// finished output row while it is cache-hot. The layer forward pass
    /// uses this to fold the bias broadcast and activation into the product.
    pub(crate) fn matmul_transpose_fused_into<P: Fn(&mut [f64]) + Sync>(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        post: &P,
    ) {
        assert_eq!(self.cols, rhs.cols, "column counts must agree");
        out.resize(self.rows, rhs.rows);
        kernels::gemm(
            &self.data,
            self.rows,
            self.cols,
            RhsLayout::Transposed(&rhs.data),
            rhs.rows,
            &mut out.data,
            post,
        );
    }

    /// Reference `self · rhs`: the pre-optimisation triple loop. Kept
    /// (hidden) so property tests and benches can compare the tiled kernel
    /// against it in-process.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[doc(hidden)]
    #[must_use]
    pub fn naive_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // memory in both `rhs` and `out`.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `selfᵀ · rhs` (see [`Matrix::naive_matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    #[doc(hidden)]
    #[must_use]
    pub fn naive_transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row counts must agree");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let left = &self.data[r * self.cols..(r + 1) * self.cols];
            let right = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in left.iter().enumerate() {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(right) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `self · rhsᵀ` (see [`Matrix::naive_matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    #[doc(hidden)]
    #[must_use]
    pub fn naive_matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "column counts must agree");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let left = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let right = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in left.iter().zip(right) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// The transposed matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a * b;
        }
        out
    }

    /// Scales every element by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds `rhs` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_in_place(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (v, &b) in self.data.iter_mut().zip(&rhs.data) {
            *v += b;
        }
    }

    /// Adds `bias` (length = cols) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    /// Column sums as a vector of length `cols`.
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        self.column_sums_into(&mut sums);
        sums
    }

    /// Column sums into `out` (resized to `cols`).
    pub fn column_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (s, &v) in out.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
    }

    /// Mean of all elements; zero for an empty matrix.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// The Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Stacks matrices vertically (same column count).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched column counts.
    #[must_use]
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to stack");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut at = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch in vstack");
            out.data[at..at + p.data.len()].copy_from_slice(&p.data);
            at += p.data.len();
        }
        out
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched row counts.
    #[must_use]
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "row mismatch in hconcat");
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Returns the sub-matrix of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    #[must_use]
    pub fn columns(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "column range out of bounds");
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Returns a copy of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    #[must_use]
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let mut out = Matrix::zeros(end - start, self.cols);
        out.data
            .copy_from_slice(&self.data[start * self.cols..end * self.cols]);
        out
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a + b;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a - b;
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut out = Matrix::zeros(rows, cols);
        for v in &mut out.data {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_equals_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transpose_equals_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.5]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn tiled_products_match_naive_bitwise() {
        // Sizes straddling the tile (4×16) and stream/pack thresholds.
        for &(m, k, n) in &[
            (1usize, 7usize, 9usize),
            (3, 17, 5),
            (4, 16, 16),
            (5, 33, 18),
            (23, 40, 31),
            (64, 64, 64),
        ] {
            let a = pseudo_random(m, k, 3 * m as u64 + 1);
            let b = pseudo_random(k, n, 5 * n as u64 + 7);
            assert_eq!(a.matmul(&b), a.naive_matmul(&b), "matmul {m}x{k}x{n}");

            let at = pseudo_random(k, m, 11 * m as u64 + 3);
            assert_eq!(
                at.transpose_matmul(&b),
                at.naive_transpose_matmul(&b),
                "transpose_matmul {m}x{k}x{n}"
            );

            let bt = pseudo_random(n, k, 13 * n as u64 + 5);
            assert_eq!(
                a.matmul_transpose(&bt),
                a.naive_matmul_transpose(&bt),
                "matmul_transpose {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(a.matmul(&b).rows(), 0);
        let c = Matrix::zeros(4, 0);
        let d = Matrix::zeros(0, 6);
        let prod = c.matmul(&d);
        assert_eq!((prod.rows(), prod.cols()), (4, 6));
        assert!(prod.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_into_reuses_out() {
        let a = pseudo_random(6, 8, 21);
        let b = pseudo_random(8, 10, 22);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.naive_matmul(&b));
        // Second call with different shapes reuses the same Matrix.
        let c = pseudo_random(8, 4, 23);
        a.matmul_into(&c, &mut out);
        assert_eq!(out, a.naive_matmul(&c));
    }

    #[test]
    fn resize_zeroes_and_reshapes() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.resize(3, 1);
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.resize(2, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rows_range_copies_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(
            a.rows_range(1, 3),
            Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]])
        );
        assert_eq!(a.rows_range(1, 1).rows(), 0);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        a.scale_in_place(3.0);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 6.0]]));
        a.add_in_place(&Matrix::from_rows(&[&[1.0, -1.0]]));
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 5.0]]));
    }

    #[test]
    fn hconcat_and_columns_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let joined = Matrix::hconcat(&[&a, &b]);
        assert_eq!(joined.cols(), 3);
        assert_eq!(joined.columns(0, 2), a);
        assert_eq!(joined.columns(2, 1), b);
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[3.0, 4.0]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn broadcast_and_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let biased = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(biased, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    fn norms_and_means() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn clone_is_independent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut b = a.clone();
        b.set(0, 0, 9.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(b.get(0, 0), 9.0);
    }
}
