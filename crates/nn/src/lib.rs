//! A minimal dense neural-network library.
//!
//! This crate replaces TensorFlow in the MIRAS reproduction. It implements
//! exactly what the paper's models need (§IV-C, §IV-D):
//!
//! * row-major [`Matrix`] math over `f64`,
//! * fully connected [`Dense`] layers with ReLU / tanh / softmax / linear
//!   activations ([`Activation`]),
//! * multi-layer perceptrons ([`Mlp`]) with forward, backward, and
//!   mean-squared-error training,
//! * [`Adam`] and [`Sgd`] optimizers with gradient clipping,
//! * parameter-space utilities used by DDPG: Gaussian parameter
//!   perturbation ([`Mlp::add_parameter_noise`]) and Polyak soft target
//!   updates ([`Mlp::soft_update_from`]),
//! * serde serialization of trained models.
//!
//! # Performance
//!
//! The compute core is built for throughput on CPU:
//!
//! * all three matrix products run through one cache-blocked,
//!   register-tiled GEMM with a packed right-hand side (`kernels`); the
//!   layer forward pass fuses bias and activation into the product,
//! * matrix buffers are recycled through a thread-local scratch pool, so
//!   steady-state training does not allocate,
//! * large products and coarse-grained training loops parallelise with
//!   `std::thread::scope`, governed by the `NN_NUM_THREADS` environment
//!   variable (see [`threads`]); results are bit-identical for any thread
//!   count.
//!
//! # Examples
//!
//! Fit `y = 2x` with a tiny network:
//!
//! ```
//! use nn::{Activation, Adam, Matrix, Mlp};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Relu, Activation::Linear, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0], &[6.0]]);
//! for _ in 0..500 {
//!     net.train_mse(&x, &y, &mut opt);
//! }
//! let pred = net.forward(&Matrix::from_rows(&[&[1.5]]));
//! assert!((pred.get(0, 0) - 3.0).abs() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod kernels;
mod layer;
mod matrix;
mod network;
mod optimizer;
mod scratch;
pub mod telemetry;
pub mod threads;
pub mod ziggurat;

pub use activation::Activation;
pub use layer::{Dense, DenseGrads};
pub use matrix::Matrix;
pub use network::{ForwardTrace, Mlp};
pub use optimizer::{Adam, Optimizer, Sgd};
