//! Thread-count configuration for the compute kernels.
//!
//! The crate parallelises large matrix products and (downstream) ensemble /
//! minibatch work with `std::thread::scope` — no thread-pool dependency. The
//! degree of parallelism is controlled by the `NN_NUM_THREADS` environment
//! variable, read once per process:
//!
//! * unset or unparsable → `std::thread::available_parallelism()`,
//! * `1` → every code path stays strictly serial,
//! * `n > 1` → at most `n` worker threads per parallel region.
//!
//! Kernels are written so that the split across threads never changes the
//! floating-point reduction order of any output element; a matrix product is
//! therefore bit-identical for every thread count. Coarser regions (gradient
//! shards, ensemble members) fix their shard count from this knob, so runs
//! are bit-reproducible for a fixed `NN_NUM_THREADS`.

use std::cell::Cell;
use std::sync::OnceLock;

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// The process-wide thread budget from `NN_NUM_THREADS` (see module docs).
#[must_use]
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        match std::env::var("NN_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    })
}

thread_local! {
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with all kernel-level parallelism disabled on this thread.
///
/// Used by coarse-grained parallel regions (ensemble-member training,
/// minibatch gradient shards) so their workers do not spawn nested kernel
/// threads and oversubscribe the machine.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// The thread budget for a parallel region started on this thread: `1`
/// inside [`with_serial`], otherwise [`configured_threads`].
#[must_use]
pub fn effective_threads() -> usize {
    if FORCE_SERIAL.with(Cell::get) {
        1
    } else {
        configured_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_thread() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn with_serial_forces_one_and_restores() {
        let inside = with_serial(effective_threads);
        assert_eq!(inside, 1);
        assert_eq!(effective_threads(), configured_threads());
    }

    #[test]
    fn with_serial_nests() {
        with_serial(|| {
            with_serial(|| assert_eq!(effective_threads(), 1));
            assert_eq!(effective_threads(), 1);
        });
    }
}
