//! Cache-blocked, register-tiled GEMM kernels.
//!
//! One driver ([`gemm`]) backs all three matrix products the training stack
//! uses (`A·B`, `Aᵀ·B`, `A·Bᵀ`). The right-hand side is packed into
//! column panels of [`NR`] values laid out k-major, so the innermost loop
//! streams both operands contiguously; the micro-kernel accumulates an
//! [`MR`]`×`[`NR`] register tile with one accumulator row per output row.
//!
//! Determinism contract: every output element is the sum of its `k`
//! products accumulated in ascending-`k` order from `0.0`, in every path —
//! the packed tile kernel, the unpacked small-matrix fallback, and the
//! row-parallel split (which partitions whole output rows and never splits
//! a reduction). Tiled, naive, serial and threaded results are therefore
//! bit-identical, for any thread count.
//!
//! The optional `post` hook runs exactly once on each finished output row
//! while it is still cache-hot; the layer forward pass uses it to fuse the
//! bias broadcast and activation into the product.

use crate::threads;

/// Rows per register tile (one accumulator row per output row).
pub(crate) const MR: usize = 4;
/// Columns per packed panel / register tile.
pub(crate) const NR: usize = 16;

/// Below this many multiply-adds, packing the RHS costs more than it saves.
const STREAM_MIN_MADDS: usize = 4096;
/// Packing needs at least this many LHS rows to amortise.
const PACK_MIN_ROWS: usize = MR;
/// Below this many multiply-adds the threaded split is never attempted.
const PAR_MIN_MADDS: usize = 1 << 20;

/// How the driver should read the right-hand side operand.
pub(crate) enum RhsLayout<'a> {
    /// Row-major `k × n`: `out = A · B`.
    Normal(&'a [f64]),
    /// Row-major `n × k` (the logical RHS stored transposed): `out = A · Bᵀ`.
    /// This is the packed-RHS fast path for `matmul_transpose` — panels are
    /// packed straight from the transposed layout with no intermediate copy.
    Transposed(&'a [f64]),
}

fn no_post(_: &mut [f64]) {}

/// `out(m×n) = A(m×k) · B`, with `post` applied to each completed row.
///
/// `out` must be zero-filled on entry (the small-matrix path accumulates in
/// place; the tiled path overwrites).
pub(crate) fn gemm<P: Fn(&mut [f64]) + Sync>(
    a: &[f64],
    m: usize,
    k: usize,
    rhs: RhsLayout<'_>,
    n: usize,
    out: &mut [f64],
    post: &P,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let madds = m * k * n;
    let timer = crate::telemetry::enabled().then(std::time::Instant::now);
    if m < PACK_MIN_ROWS || madds < STREAM_MIN_MADDS {
        gemm_small(a, m, k, &rhs, n, out, post);
        record_gemm(timer, false);
        return;
    }

    let panels = n.div_ceil(NR);
    let mut packed = crate::scratch::take_buffer(panels * k * NR);
    pack_rhs(&rhs, k, n, &mut packed);

    let row_blocks = m.div_ceil(MR);
    let threads = threads::effective_threads().min(row_blocks);
    if threads > 1 && madds >= PAR_MIN_MADDS {
        // Partition whole output rows (aligned to MR blocks) across scoped
        // threads. Each row's reduction stays on one thread, so the split
        // cannot change any floating-point result.
        let rows_per = row_blocks.div_ceil(threads) * MR;
        let packed_ref: &[f64] = &packed;
        std::thread::scope(|scope| {
            let mut a_rest = a;
            let mut out_rest = &mut *out;
            while !out_rest.is_empty() {
                let take = rows_per.min(out_rest.len() / n);
                let (a_chunk, a_tail) = a_rest.split_at(take * k);
                let (out_chunk, out_tail) = out_rest.split_at_mut(take * n);
                a_rest = a_tail;
                out_rest = out_tail;
                scope.spawn(move || gemm_packed(a_chunk, take, k, packed_ref, n, out_chunk, post));
            }
        });
        crate::scratch::recycle(packed);
        record_gemm(timer, true);
    } else {
        gemm_packed(a, m, k, &packed, n, out, post);
        crate::scratch::recycle(packed);
        record_gemm(timer, false);
    }
}

/// Publishes one GEMM call's counters/timing to the crate-global telemetry
/// slot. `timer` is `Some` only when telemetry was enabled at entry.
fn record_gemm(timer: Option<std::time::Instant>, parallel: bool) {
    if let Some(start) = timer {
        let elapsed = start.elapsed().as_secs_f64();
        crate::telemetry::with(|t| {
            t.counter("nn.gemm_calls", 1);
            if parallel {
                t.counter("nn.gemm_parallel", 1);
            }
            t.observe("nn.gemm_secs", elapsed);
        });
    }
}

/// Convenience wrapper for product-only call sites.
pub(crate) fn gemm_plain(
    a: &[f64],
    m: usize,
    k: usize,
    rhs: RhsLayout<'_>,
    n: usize,
    out: &mut [f64],
) {
    gemm(a, m, k, rhs, n, out, &no_post);
}

/// Packs the RHS into zero-padded k-major column panels of width `NR`:
/// `packed[p*k*NR + t*NR + jj] = B[t][p*NR + jj]`.
fn pack_rhs(rhs: &RhsLayout<'_>, k: usize, n: usize, packed: &mut [f64]) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let width = NR.min(n - j0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        match *rhs {
            RhsLayout::Normal(b) => {
                for t in 0..k {
                    dst[t * NR..t * NR + width].copy_from_slice(&b[t * n + j0..t * n + j0 + width]);
                }
            }
            RhsLayout::Transposed(bt) => {
                for jj in 0..width {
                    let col = &bt[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (t, &v) in col.iter().enumerate() {
                        dst[t * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// MR-row × NR-col register-tile micro-kernel over one packed panel.
///
/// The per-row slice locals are deliberate: LLVM keeps the accumulator tile
/// in vector registers with this shape, but spills it if the rows are
/// addressed through a generic `for r in 0..MR` loop.
#[inline(always)]
fn micro_tile(a: &[f64], k: usize, i: usize, panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    let a0 = &a[i * k..(i + 1) * k];
    let a1 = &a[(i + 1) * k..(i + 2) * k];
    let a2 = &a[(i + 2) * k..(i + 3) * k];
    let a3 = &a[(i + 3) * k..(i + 4) * k];
    for t in 0..k {
        let bv = &panel[t * NR..(t + 1) * NR];
        let (v0, v1, v2, v3) = (a0[t], a1[t], a2[t], a3[t]);
        for jj in 0..NR {
            acc[0][jj] += v0 * bv[jj];
            acc[1][jj] += v1 * bv[jj];
            acc[2][jj] += v2 * bv[jj];
            acc[3][jj] += v3 * bv[jj];
        }
    }
}

/// Single-row variant for the `m % MR` remainder rows.
#[inline(always)]
fn micro_row(a_row: &[f64], panel: &[f64], acc: &mut [f64; NR]) {
    for (t, &v) in a_row.iter().enumerate() {
        let bv = &panel[t * NR..(t + 1) * NR];
        for jj in 0..NR {
            acc[jj] += v * bv[jj];
        }
    }
}

/// Tiled product over a pre-packed RHS; writes (never accumulates into)
/// `out` and runs `post` on each completed row.
fn gemm_packed<P: Fn(&mut [f64]) + Sync>(
    a: &[f64],
    m: usize,
    k: usize,
    packed: &[f64],
    n: usize,
    out: &mut [f64],
    post: &P,
) {
    let full_panels = n / NR;
    let tail = n % NR;
    let panel_len = k * NR;
    let mut i = 0;
    while i + MR <= m {
        for p in 0..full_panels {
            let panel = &packed[p * panel_len..(p + 1) * panel_len];
            let mut acc = [[0.0f64; NR]; MR];
            micro_tile(a, k, i, panel, &mut acc);
            for (r, acc_row) in acc.iter().enumerate() {
                let at = (i + r) * n + p * NR;
                out[at..at + NR].copy_from_slice(acc_row);
            }
        }
        if tail != 0 {
            let panel = &packed[full_panels * panel_len..(full_panels + 1) * panel_len];
            let mut acc = [[0.0f64; NR]; MR];
            micro_tile(a, k, i, panel, &mut acc);
            for (r, acc_row) in acc.iter().enumerate() {
                let at = (i + r) * n + full_panels * NR;
                out[at..at + tail].copy_from_slice(&acc_row[..tail]);
            }
        }
        for r in 0..MR {
            post(&mut out[(i + r) * n..(i + r + 1) * n]);
        }
        i += MR;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        for p in 0..full_panels {
            let panel = &packed[p * panel_len..(p + 1) * panel_len];
            let mut acc = [0.0f64; NR];
            micro_row(a_row, panel, &mut acc);
            out[i * n + p * NR..i * n + (p + 1) * NR].copy_from_slice(&acc);
        }
        if tail != 0 {
            let panel = &packed[full_panels * panel_len..(full_panels + 1) * panel_len];
            let mut acc = [0.0f64; NR];
            micro_row(a_row, panel, &mut acc);
            out[i * n + full_panels * NR..i * n + full_panels * NR + tail]
                .copy_from_slice(&acc[..tail]);
        }
        post(&mut out[i * n..(i + 1) * n]);
        i += 1;
    }
}

/// Unpacked fallback for matrices too small to amortise packing.
/// Accumulates into the zero-filled `out` in the same ascending-`k` order
/// as the tiled kernel, so both paths agree bit-for-bit.
fn gemm_small<P: Fn(&mut [f64]) + Sync>(
    a: &[f64],
    m: usize,
    k: usize,
    rhs: &RhsLayout<'_>,
    n: usize,
    out: &mut [f64],
    post: &P,
) {
    match *rhs {
        RhsLayout::Normal(b) => {
            for i in 0..m {
                let out_row = &mut out[i * n..(i + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for (t, &av) in a_row.iter().enumerate() {
                    let b_row = &b[t * n..(t + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
                post(out_row);
            }
        }
        RhsLayout::Transposed(bt) => {
            for i in 0..m {
                let out_row = &mut out[i * n..(i + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &bt[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o = acc;
                }
                post(out_row);
            }
        }
    }
}
