//! Layer activation functions and their backward passes.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// The activation applied after a layer's affine transform.
///
/// `Softmax` is row-wise (per sample); the paper uses it at the actor's
/// output layer to turn the policy into a categorical distribution over task
/// types, which enforces the consumer-budget constraint by construction
/// (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit, `max(0, x)` — the paper's hidden activation.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Row-wise softmax.
    Softmax,
}

impl Activation {
    /// Applies the activation to pre-activations `z`.
    #[must_use]
    pub fn forward(self, z: &Matrix) -> Matrix {
        let mut out = z.clone();
        self.forward_in_place(&mut out);
        out
    }

    /// Applies the activation in place, turning pre-activations into outputs.
    pub fn forward_in_place(self, z: &mut Matrix) {
        for r in 0..z.rows() {
            self.apply_row(z.row_mut(r));
        }
    }

    /// Applies the activation to one row of pre-activations in place.
    ///
    /// Every activation in this crate is at most row-wise (softmax) — this
    /// is what lets the layer kernel fuse the activation into the matrix
    /// product one cache-hot output row at a time.
    pub(crate) fn apply_row(self, row: &mut [f64]) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Activation::Tanh => {
                for v in row.iter_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in row.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Softmax => {
                // Stabilise against overflow before exponentiating.
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Backward pass: given the activation output `y` and the loss gradient
    /// with respect to `y`, returns the gradient with respect to the
    /// pre-activations `z`.
    ///
    /// # Panics
    ///
    /// Panics if `y` and `d_out` shapes differ.
    #[must_use]
    pub fn backward(self, y: &Matrix, d_out: &Matrix) -> Matrix {
        let mut d = d_out.clone();
        self.backward_in_place(y, &mut d);
        d
    }

    /// In-place backward pass: `d` holds the gradient with respect to the
    /// output `y` on entry and the gradient with respect to the
    /// pre-activations on exit.
    ///
    /// # Panics
    ///
    /// Panics if `y` and `d` shapes differ.
    pub fn backward_in_place(self, y: &Matrix, d: &mut Matrix) {
        assert_eq!(
            (y.rows(), y.cols()),
            (d.rows(), d.cols()),
            "activation backward shape mismatch"
        );
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                // d/dz relu = 1 where the output is positive.
                for (g, &v) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, &v) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= 1.0 - v * v;
                }
            }
            Activation::Sigmoid => {
                for (g, &v) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= v * (1.0 - v);
                }
            }
            Activation::Softmax => {
                // Jacobian-vector product per row:
                // dz_i = y_i * (dy_i − Σ_j dy_j · y_j)
                for r in 0..y.rows() {
                    let yr = y.row(r);
                    let dr = d.row_mut(r);
                    let dot: f64 = yr.iter().zip(dr.iter()).map(|(&a, &b)| a * b).sum();
                    for (g, &v) in dr.iter_mut().zip(yr) {
                        *g = v * (*g - dot);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, z: &[f64], d_out: &[f64]) -> Vec<f64> {
        // Numerical gradient of L = Σ d_out · act(z) with respect to z.
        let eps = 1e-6;
        let mut grad = vec![0.0; z.len()];
        for i in 0..z.len() {
            let mut zp = z.to_vec();
            let mut zm = z.to_vec();
            zp[i] += eps;
            zm[i] -= eps;
            let fp = act.forward(&Matrix::row_vector(&zp));
            let fm = act.forward(&Matrix::row_vector(&zm));
            let lp: f64 = fp.row(0).iter().zip(d_out).map(|(&y, &d)| y * d).sum();
            let lm: f64 = fm.row(0).iter().zip(d_out).map(|(&y, &d)| y * d).sum();
            grad[i] = (lp - lm) / (2.0 * eps);
        }
        grad
    }

    fn check_gradient(act: Activation) {
        let z = [0.5, -1.2, 2.0, 0.01];
        let d_out = [1.0, -0.5, 0.25, 2.0];
        let y = act.forward(&Matrix::row_vector(&z));
        let analytic = act.backward(&y, &Matrix::row_vector(&d_out));
        let numeric = finite_diff(act, &z, &d_out);
        for (a, n) in analytic.row(0).iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5, "{act:?}: analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn linear_gradient_matches() {
        check_gradient(Activation::Linear);
    }

    #[test]
    fn relu_gradient_matches() {
        check_gradient(Activation::Relu);
    }

    #[test]
    fn tanh_gradient_matches() {
        check_gradient(Activation::Tanh);
    }

    #[test]
    fn sigmoid_gradient_matches() {
        check_gradient(Activation::Sigmoid);
    }

    #[test]
    fn softmax_gradient_matches() {
        check_gradient(Activation::Softmax);
    }

    #[test]
    fn in_place_matches_allocating_paths() {
        let z = Matrix::from_rows(&[&[0.3, -0.7, 1.9], &[-0.2, 0.0, 4.0]]);
        let d_out = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.1, 0.2, -0.3]]);
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softmax,
        ] {
            let y = act.forward(&z);
            let mut y2 = z.clone();
            act.forward_in_place(&mut y2);
            assert_eq!(y, y2, "{act:?} forward");

            let d = act.backward(&y, &d_out);
            let mut d2 = d_out.clone();
            act.backward_in_place(&y, &mut d2);
            assert_eq!(d, d2, "{act:?} backward");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let y = Activation::Softmax.forward(&z);
        for r in 0..y.rows() {
            let sum: f64 = y.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(y.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let y1 = Activation::Softmax.forward(&Matrix::row_vector(&[1.0, 2.0]));
        let y2 = Activation::Softmax.forward(&Matrix::row_vector(&[1001.0, 1002.0]));
        for (a, b) in y1.row(0).iter().zip(y2.row(0)) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(y2.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_clamps_negatives() {
        let y = Activation::Relu.forward(&Matrix::row_vector(&[-1.0, 0.0, 2.0]));
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
    }
}
