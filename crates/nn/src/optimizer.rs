//! Gradient-descent optimizers.

use serde::{Deserialize, Serialize};

/// A first-order optimizer that updates parameter buffers in place.
///
/// Buffers are identified by a stable `slot` index assigned by the caller
/// (e.g. layer 0's weights are slot 0, its bias slot 1, …); stateful
/// optimizers ([`Adam`]) keep per-slot moment estimates.
pub trait Optimizer {
    /// Applies one update step to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grads.len()`.
    fn update(&mut self, slot: usize, params: &mut [f64], grads: &[f64]);

    /// The global norm above which gradients are scaled down, if any.
    fn clip_norm(&self) -> Option<f64> {
        None
    }
}

/// Plain stochastic gradient descent.
///
/// # Examples
///
/// ```
/// use nn::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.1);
/// let mut params = [1.0, 2.0];
/// opt.update(0, &mut params, &[10.0, -10.0]);
/// assert_eq!(params, [0.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    learning_rate: f64,
    clip: Option<f64>,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive and finite.
    #[must_use]
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        Sgd {
            learning_rate,
            clip: None,
        }
    }

    /// Enables global-norm gradient clipping.
    #[must_use]
    pub fn with_clip_norm(mut self, clip: f64) -> Self {
        self.clip = Some(clip);
        self
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.learning_rate * g;
        }
    }

    fn clip_norm(&self) -> Option<f64> {
        self.clip
    }
}

/// The Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
///
/// # Examples
///
/// ```
/// use nn::{Adam, Optimizer};
///
/// let mut opt = Adam::new(1e-3);
/// let mut params = [0.5];
/// for _ in 0..100 {
///     // Gradient of (p - 1)^2 is 2(p - 1): Adam walks p toward 1.
///     let g = 2.0 * (params[0] - 1.0);
///     opt.update(0, &mut params, &[g]);
/// }
/// assert!(params[0] > 0.55);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    clip: Option<f64>,
    /// Per-slot first/second moment buffers and step counters.
    state: Vec<AdamSlot>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive and finite.
    #[must_use]
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip: None,
            state: Vec::new(),
        }
    }

    /// Enables global-norm gradient clipping.
    #[must_use]
    pub fn with_clip_norm(mut self, clip: f64) -> Self {
        self.clip = Some(clip);
        self
    }

    /// The configured learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Drops all moment state (e.g. when reusing the optimizer for a new
    /// network).
    pub fn reset_state(&mut self) {
        self.state.clear();
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient mismatch");
        if self.state.len() <= slot {
            self.state.resize_with(slot + 1, AdamSlot::default);
        }
        let s = &mut self.state[slot];
        if s.m.len() != params.len() {
            s.m = vec![0.0; params.len()];
            s.v = vec![0.0; params.len()];
            s.t = 0;
        }
        s.t += 1;
        let bias1 = 1.0 - self.beta1.powi(s.t as i32);
        let bias2 = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * g;
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = s.m[i] / bias1;
            let v_hat = s.v[i] / bias2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn clip_norm(&self) -> Option<f64> {
        self.clip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [5.0];
        for _ in 0..200 {
            let g = 2.0 * p[0];
            opt.update(0, &mut p, &[g]);
        }
        assert!(p[0].abs() < 1e-6);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.05);
        let mut p = [5.0];
        for _ in 0..2000 {
            let g = 2.0 * p[0];
            opt.update(0, &mut p, &[g]);
        }
        assert!(p[0].abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn adam_slots_are_independent() {
        let mut opt = Adam::new(0.1);
        let mut a = [1.0];
        let mut b = [1.0];
        // Slot 0 takes many steps; slot 1 takes one. If their moments were
        // shared, b's step size would be wrong.
        for _ in 0..10 {
            opt.update(0, &mut a, &[1.0]);
        }
        opt.update(1, &mut b, &[1.0]);
        let first_step = 1.0 - b[0];
        // Adam's first bias-corrected step equals the learning rate.
        assert!((first_step - 0.1).abs() < 1e-9);
    }

    #[test]
    fn adam_handles_resized_buffers() {
        let mut opt = Adam::new(0.1);
        let mut small = [1.0];
        opt.update(0, &mut small, &[1.0]);
        let mut large = [1.0, 2.0];
        // Same slot, new shape: state resets instead of panicking.
        opt.update(0, &mut large, &[1.0, 1.0]);
        assert!(large[0] < 1.0 && large[1] < 2.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_panics() {
        let _ = Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "parameter/gradient mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0];
        opt.update(0, &mut p, &[1.0, 2.0]);
    }

    #[test]
    fn clip_norm_is_exposed() {
        assert_eq!(Sgd::new(0.1).clip_norm(), None);
        assert_eq!(Sgd::new(0.1).with_clip_norm(5.0).clip_norm(), Some(5.0));
        assert_eq!(Adam::new(0.1).with_clip_norm(1.0).clip_norm(), Some(1.0));
    }
}
