//! Batched-vs-single forward equivalence.
//!
//! The lockstep rollout engine relies on one invariant: row `i` of a
//! batched forward pass is **bitwise**-equal to `forward_one(row_i)`. The
//! GEMM core guarantees it by accumulating every output element in
//! ascending-k order from `0.0` in all dispatch paths (packed tile, small
//! fallback, row-parallel split); these tests pin the contract down across
//! shapes, batch sizes and activations.

use nn::{Activation, Matrix, Mlp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_net(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Mlp {
    Mlp::new(sizes, hidden, output, &mut SmallRng::seed_from_u64(seed))
}

proptest! {
    /// `forward_batch` row `i` is bitwise-equal to `forward_one(row_i)`
    /// across random shapes (including B = 1) and activations.
    #[test]
    fn forward_batch_rows_match_forward_one_bitwise(
        seed in 0u64..1000,
        batch in 1usize..20,
        (input_dim, hidden_dim, output_dim) in (1usize..8, 1usize..24, 1usize..8),
        depth in 1usize..4,
        act_pick in 0usize..3,
        data in proptest::collection::vec(-5.0f64..5.0, 1..160),
    ) {
        let hidden = [Activation::Relu, Activation::Tanh, Activation::Sigmoid][act_pick];
        let mut sizes = vec![input_dim];
        sizes.extend(std::iter::repeat(hidden_dim).take(depth - 1));
        sizes.push(output_dim);
        let net = build_net(&sizes, hidden, Activation::Linear, seed);

        let mut x = Matrix::zeros(batch, input_dim);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = data[i % data.len()];
        }

        let batched = net.forward_batch(&x);
        prop_assert_eq!((batched.rows(), batched.cols()), (batch, output_dim));
        for r in 0..batch {
            let single = net.forward_one(x.row(r));
            prop_assert_eq!(
                batched.row(r),
                single.as_slice(),
                "row {} differs from forward_one", r
            );
        }
    }
}

/// The empty batch is legal: zero rows in, zero rows out, right width.
#[test]
fn empty_batch_forward_is_well_defined() {
    let net = build_net(&[3, 8, 2], Activation::Relu, Activation::Linear, 42);
    let x = Matrix::zeros(0, 3);
    let y = net.forward_batch(&x);
    assert_eq!((y.rows(), y.cols()), (0, 2));
}

/// `forward_into` reuses the output buffer and matches `forward` exactly.
#[test]
fn forward_into_matches_forward_and_reuses_buffer() {
    let net = build_net(&[4, 16, 16, 3], Activation::Relu, Activation::Linear, 7);
    let mut out = Matrix::zeros(9, 9);
    for batch in [1usize, 2, 5, 17] {
        let mut x = Matrix::zeros(batch, 4);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.37).cos();
        }
        net.forward_into(&x, &mut out);
        assert_eq!(out, net.forward(&x), "batch {batch}");
    }
}

/// `forward_one_into` refills the caller's vector and matches
/// `forward_one` bitwise, including on a single-layer network (the direct
/// infer-into path).
#[test]
fn forward_one_into_matches_forward_one() {
    for sizes in [vec![5usize, 2], vec![5, 12, 12, 2]] {
        let net = build_net(&sizes, Activation::Tanh, Activation::Softmax, 11);
        let mut out = vec![99.0; 7];
        let x = [0.4, -1.2, 3.3, 0.0, -0.7];
        net.forward_one_into(&x, &mut out);
        assert_eq!(out, net.forward_one(&x), "sizes {sizes:?}");
    }
}

/// Softmax rows are normalised per row, so the row-wise equivalence must
/// hold through it too (each row's max/sum only sees its own row).
#[test]
fn softmax_output_rows_match_single_forward_bitwise() {
    let net = build_net(&[3, 10, 4], Activation::Relu, Activation::Softmax, 21);
    let mut x = Matrix::zeros(33, 3);
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 7 % 13) as f64) - 6.0;
    }
    let batched = net.forward_batch(&x);
    for r in 0..x.rows() {
        assert_eq!(batched.row(r), net.forward_one(x.row(r)).as_slice());
    }
}
