//! Property-based tests for the tiled GEMM kernels: the optimised products
//! must agree with the retained naive reference implementations on every
//! shape — including degenerate 1×N, N×1, and empty-batch inputs — and must
//! be invariant to the thread count.
//!
//! The tiled kernels accumulate each output element in the same ascending-k
//! order as the naive loops, so the comparisons here are *bitwise*, which is
//! stronger than the ≤1e-9 elementwise bound the design requires.

use nn::{Activation, Dense, Matrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fills a matrix with uniform values from the given rng.
fn random_matrix(rng: &mut SmallRng, rows: usize, cols: usize) -> Matrix {
    use rand::Rng;
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// A strategy for a random matrix of the given shape.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// A strategy for a conformable (A: m×k, B: k×n) pair over shapes that cover
/// the stream fallback, the packed fast path, and ragged tile remainders.
fn product_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..40, 1usize..40, 1usize..40).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

fn assert_bitwise_eq(actual: &Matrix, expected: &Matrix) {
    assert_eq!(actual.rows(), expected.rows());
    assert_eq!(actual.cols(), expected.cols());
    for (i, (a, b)) in actual
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {i} differs: tiled {a} vs naive {b}"
        );
    }
}

proptest! {
    /// Tiled A·B matches the naive triple loop bit-for-bit.
    #[test]
    fn tiled_matmul_matches_naive((a, b) in product_pair()) {
        assert_bitwise_eq(&a.matmul(&b), &a.naive_matmul(&b));
    }

    /// Tiled Aᵀ·B matches the naive reference bit-for-bit.
    #[test]
    fn tiled_transpose_matmul_matches_naive(
        (m, k, n) in (1usize..40, 1usize..40, 1usize..40),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, k, m);
        let b = random_matrix(&mut rng, k, n);
        assert_bitwise_eq(&a.transpose_matmul(&b), &a.naive_transpose_matmul(&b));
    }

    /// Tiled A·Bᵀ (the packed-RHS fast path) matches the naive reference
    /// bit-for-bit.
    #[test]
    fn tiled_matmul_transpose_matches_naive(
        (m, k, n) in (1usize..40, 1usize..40, 1usize..40),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, n, k);
        assert_bitwise_eq(&a.matmul_transpose(&b), &a.naive_matmul_transpose(&b));
    }

    /// Single-row (1×N) and single-column (N×1) products agree with naive.
    #[test]
    fn degenerate_row_and_column_shapes_match_naive(
        n in 1usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let row = random_matrix(&mut rng, 1, n);
        let square = random_matrix(&mut rng, n, n);
        let col = random_matrix(&mut rng, n, 1);
        assert_bitwise_eq(&row.matmul(&square), &row.naive_matmul(&square));
        assert_bitwise_eq(&square.matmul(&col), &square.naive_matmul(&col));
        assert_bitwise_eq(&col.matmul(&row), &col.naive_matmul(&row));
    }

    /// The fused layer forward (product + bias + activation in one kernel)
    /// matches the unfused naive pipeline to within 1e-9.
    #[test]
    fn fused_dense_forward_matches_unfused(
        batch in 1usize..24,
        fan_in in 1usize..24,
        fan_out in 1usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for activation in [
            Activation::Linear,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softmax,
        ] {
            let layer = Dense::new(fan_in, fan_out, activation, &mut rng);
            let x = random_matrix(&mut rng, batch, fan_in);
            let fused = layer.infer(&x);
            let unfused = activation.forward(
                &x.naive_matmul_transpose(layer.weights())
                    .add_row_broadcast(layer.bias()),
            );
            for (a, b) in fused.as_slice().iter().zip(unfused.as_slice()) {
                prop_assert!((a - b).abs() <= 1e-9, "fused {a} vs unfused {b}");
            }
        }
    }
}

#[test]
fn empty_batch_shapes_match_naive() {
    let empty = Matrix::zeros(0, 7);
    let b = Matrix::zeros(7, 5);
    assert_bitwise_eq(&empty.matmul(&b), &empty.naive_matmul(&b));
    // Zero-width inner dimension: the product is a well-defined zero matrix.
    let a = Matrix::zeros(4, 0);
    let wide = Matrix::zeros(0, 6);
    assert_bitwise_eq(&a.matmul(&wide), &a.naive_matmul(&wide));
    assert_bitwise_eq(
        &a.matmul_transpose(&Matrix::zeros(6, 0)),
        &Matrix::zeros(4, 6),
    );
}

/// Products big enough to cross the parallel-split threshold are bitwise
/// identical whether they run on one thread or many: the row-partitioned
/// reduction never splits an accumulation.
#[test]
fn threaded_products_are_bitwise_identical_to_serial() {
    let mut rng = SmallRng::seed_from_u64(42);
    // 160×160×160 ≈ 4.1M multiply-adds, above the 1M parallel threshold.
    let a = random_matrix(&mut rng, 160, 160);
    let b = random_matrix(&mut rng, 160, 160);
    let (serial_ab, serial_atb, serial_abt) =
        nn::threads::with_serial(|| (a.matmul(&b), a.transpose_matmul(&b), a.matmul_transpose(&b)));
    assert_bitwise_eq(&a.matmul(&b), &serial_ab);
    assert_bitwise_eq(&a.transpose_matmul(&b), &serial_atb);
    assert_bitwise_eq(&a.matmul_transpose(&b), &serial_abt);
    assert_bitwise_eq(&serial_ab, &a.naive_matmul(&b));
}
