//! Property-based tests for the neural-network library: algebraic matrix
//! identities and randomized gradient checks.

use nn::{Activation, Matrix, Mlp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A strategy for small random matrices of the given shape.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// Distributivity: A·(B + C) = A·B + A·C.
    #[test]
    fn matmul_distributes(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// (Aᵀ)ᵀ = A.
    #[test]
    fn transpose_is_involution(a in matrix(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// The fused transpose products agree with explicit transposition.
    #[test]
    fn fused_transpose_products_agree(a in matrix(4, 3), b in matrix(4, 2)) {
        let fused = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn product_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Softmax outputs are valid distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(z in matrix(4, 6)) {
        let y = Activation::Softmax.forward(&z);
        for r in 0..y.rows() {
            let sum: f64 = y.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(y.row(r).iter().all(|&p| p >= 0.0 && p <= 1.0));
        }
    }

    /// Randomized end-to-end gradient check: the MLP's input gradient
    /// matches finite differences for arbitrary inputs.
    #[test]
    fn input_gradient_matches_finite_difference(
        seed in 0u64..1000,
        input in proptest::collection::vec(-2.0f64..2.0, 3),
    ) {
        let net = Mlp::new(
            &[3, 6, 2],
            Activation::Tanh,
            Activation::Linear,
            &mut SmallRng::seed_from_u64(seed),
        );
        let x = Matrix::row_vector(&input);
        let d_out = Matrix::row_vector(&[1.0, -1.0]);
        let analytic = net.input_gradient(&x, &d_out);
        let f = |m: &Matrix| -> f64 {
            let y = net.forward(m);
            y.get(0, 0) - y.get(0, 1)
        };
        let eps = 1e-6;
        for c in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            xm.set(0, c, x.get(0, c) - eps);
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic.get(0, c)).abs() < 1e-4,
                "dim {c}: numeric {numeric}, analytic {}",
                analytic.get(0, c)
            );
        }
    }

    /// Soft updates interpolate linearly: after one update with τ,
    /// every parameter equals τ·src + (1 − τ)·dst.
    #[test]
    fn soft_update_interpolates(seed in 0u64..1000, tau in 0.0f64..1.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let src = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let orig = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let mut dst = orig.clone();
        dst.soft_update_from(&src, tau);
        for ((d, s), o) in dst
            .flat_params()
            .iter()
            .zip(src.flat_params())
            .zip(orig.flat_params())
        {
            prop_assert!((d - (tau * s + (1.0 - tau) * o)).abs() < 1e-12);
        }
    }
}
