//! Shared harness code for the figure-reproduction binaries.
//!
//! Every figure in the MIRAS paper's evaluation has a binary in
//! `src/bin/` (see `DESIGN.md` §5 for the index); this library holds the
//! pieces they share: ensemble selection, the evaluation loop that runs a
//! registry-built [`Policy`] against the emulated cluster, MIRAS training
//! with on-disk caching of the trained agent, and plain-text table output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use baselines::{by_name, Observation, Policy, PolicyConfig};
use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv, SimConfig, WorkloadSpec};
use miras_core::{ClusterEnvAdapter, IterationReport, MirasAgent, MirasConfig, MirasTrainer};
use serde::{Deserialize, Serialize};
use telemetry::{BufferedRecorder, JsonlSink, Telemetry, Value};
use workflow::{BurstSpec, Ensemble};

/// The worker-thread budget for the scenario × algorithm evaluation grid:
/// `MIRAS_GRID_THREADS` when set to a positive integer, otherwise the `nn`
/// kernel thread budget. The variable is re-read on every call (unlike
/// `NN_NUM_THREADS`, which is latched once per process) so in-process tests
/// can compare single- and multi-worker runs.
#[must_use]
pub fn grid_threads() -> usize {
    match std::env::var("MIRAS_GRID_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => nn::threads::effective_threads(),
    }
}

/// Runs independent evaluation-grid cells on up to [`grid_threads`] worker
/// threads, returning their results **in cell order** regardless of how the
/// cells were scheduled. Cells are statically partitioned into contiguous
/// chunks, one per worker; each cell runs under
/// [`nn::threads::with_serial`] when more than one worker is live, so grid
/// workers do not also fan out kernel threads and oversubscribe the machine.
///
/// Cells must be independent: they may not share mutable state or consume a
/// common RNG stream, which is what makes the outputs identical for every
/// worker count.
pub fn run_grid<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let workers = grid_threads().min(n).max(1);
    if workers <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for (task_chunk, result_chunk) in slots.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (task, result) in task_chunk.iter_mut().zip(result_chunk.iter_mut()) {
                    if let Some(f) = task.take() {
                        *result = Some(nn::threads::with_serial(f));
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every grid cell ran"))
        .collect()
}

/// Builds the drain-dynamics dataset (`s' = max(0, s − 2a) + 1`) the
/// throughput benches train their environment model on; the model's
/// accuracy is irrelevant to them, only its shape and cost.
#[must_use]
pub fn drain_dataset(j: usize, seed: u64) -> miras_core::TransitionDataset {
    use rand::Rng;
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let mut data = miras_core::TransitionDataset::new(j);
    for _ in 0..600 {
        let s: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0..20.0)).collect();
        let a: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0f64..7.0).floor()).collect();
        let next: Vec<f64> = s
            .iter()
            .zip(&a)
            .map(|(&si, &ai)| (si - 2.0 * ai).max(0.0) + 1.0)
            .collect();
        data.push(miras_core::Transition {
            state: s,
            action: a,
            next_state: next,
        });
    }
    data
}

/// Times the sequential rollout path shared by the throughput benches:
/// `act_exploratory` → `SyntheticEnv::step` → `observe`, in waves of
/// `rollout_len` steps with a reset and perturbation resample between waves
/// (the trainer's structure, minus the gradient updates that are orthogonal
/// to the rollout engine). One untimed warm-up wave fills the normaliser
/// scratch, replay ring and recent-state window first so the timed region
/// sees steady-state costs. Returns `(env_steps, secs)`.
pub fn time_sequential_rollouts(
    refined: &miras_core::RefinedModel,
    data: &miras_core::TransitionDataset,
    budget: usize,
    agent: &mut rl::Ddpg,
    rollout_len: usize,
    env_steps: usize,
    telemetry: &Telemetry,
) -> (usize, f64) {
    use rl::Environment;
    let mut env = miras_core::SyntheticEnv::new(refined.clone(), data.clone(), budget, 99);
    env.set_telemetry(telemetry.clone());
    let rollouts = (env_steps / rollout_len).max(1);
    let mut s = env.reset();
    for _ in 0..rollout_len {
        let a = agent.act_exploratory(&s);
        let t = env.step(&a);
        agent.observe(&s, &a, t.reward, &t.next_state);
        s = t.next_state;
    }
    let start = std::time::Instant::now();
    for _ in 0..rollouts {
        let mut s = env.reset();
        agent.resample_perturbation();
        for _ in 0..rollout_len {
            let a = agent.act_exploratory(&s);
            let t = env.step(&a);
            agent.observe(&s, &a, t.reward, &t.next_state);
            s = t.next_state;
        }
    }
    (rollouts * rollout_len, start.elapsed().as_secs_f64())
}

/// Which workload ensemble to run: the paper's two scientific ensembles
/// plus the GPU inference-serving ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleKind {
    /// Material Science Data: 3 workflows, 4 task types, C = 14.
    Msd,
    /// LIGO inspiral analysis: 4 workflows, 9 task types, C = 30.
    Ligo,
    /// GPU inference serving (KIS-S style): 3 request classes, 6 task
    /// types, C = 24.
    GpuServe,
}

impl EnsembleKind {
    /// Builds the ensemble definition.
    #[must_use]
    pub fn ensemble(self) -> Ensemble {
        match self {
            EnsembleKind::Msd => Ensemble::msd(),
            EnsembleKind::Ligo => Ensemble::ligo(),
            EnsembleKind::GpuServe => Ensemble::gpu_serve(),
        }
    }

    /// Lower-case name used in output and cache paths.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnsembleKind::Msd => "msd",
            EnsembleKind::Ligo => "ligo",
            EnsembleKind::GpuServe => "gpu-serve",
        }
    }

    /// The MIRAS configuration: paper-scale when `paper` is set, otherwise
    /// the proportionally scaled-down fast variant.
    #[must_use]
    pub fn miras_config(self, seed: u64, paper: bool) -> MirasConfig {
        match (self, paper) {
            (EnsembleKind::Msd, true) => MirasConfig::msd_paper(seed),
            (EnsembleKind::Msd, false) => MirasConfig::msd_fast(seed),
            (EnsembleKind::Ligo, true) => MirasConfig::ligo_paper(seed),
            (EnsembleKind::Ligo, false) => MirasConfig::ligo_fast(seed),
            (EnsembleKind::GpuServe, true) => MirasConfig::gpu_serve_paper(seed),
            (EnsembleKind::GpuServe, false) => MirasConfig::gpu_serve_fast(seed),
        }
    }

    /// The three burst scenarios for this ensemble (§VI-D for the paper's
    /// ensembles; sized analogously for GPU serving).
    #[must_use]
    pub fn burst_scenarios(self) -> Vec<BurstSpec> {
        match self {
            EnsembleKind::Msd => vec![
                BurstSpec::new(vec![300, 200, 300]),
                BurstSpec::new(vec![1000, 300, 400]),
                BurstSpec::new(vec![500, 500, 500]),
            ],
            EnsembleKind::Ligo => vec![
                BurstSpec::new(vec![100, 100, 50, 30]),
                BurstSpec::new(vec![150, 150, 80, 50]),
                BurstSpec::new(vec![80, 80, 80, 80]),
            ],
            EnsembleKind::GpuServe => vec![
                BurstSpec::new(vec![200, 80, 20]),
                BurstSpec::new(vec![400, 120, 40]),
                BurstSpec::new(vec![150, 150, 60]),
            ],
        }
    }

    /// Evaluation horizon (decision windows) used by the comparison figures.
    #[must_use]
    pub fn comparison_steps(self) -> usize {
        match self {
            EnsembleKind::Msd => 25,
            EnsembleKind::Ligo => 40,
            EnsembleKind::GpuServe => 25,
        }
    }

    /// Parses `"msd"` / `"ligo"` / `"gpu-serve"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "msd" => Some(EnsembleKind::Msd),
            "ligo" => Some(EnsembleKind::Ligo),
            "gpu-serve" | "gpu_serve" | "gpuserve" => Some(EnsembleKind::GpuServe),
            _ => None,
        }
    }
}

/// Command-line arguments shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Which ensemble(s) to run; `None` means both.
    pub ensemble: Option<EnsembleKind>,
    /// Master seed.
    pub seed: u64,
    /// Run at the paper's full scale instead of the fast scale.
    pub paper: bool,
    /// Override the number of outer iterations (training traces).
    pub iterations: Option<usize>,
    /// Ignore any cached trained agent.
    pub no_cache: bool,
    /// Evaluate in the steady-state (burst-free) regime where applicable
    /// (used by the sample-efficiency ablation).
    pub steady: bool,
    /// Shrink every budget to a seconds-scale run (used by CI to validate
    /// the pipeline and the telemetry stream, not the scientific results).
    pub smoke: bool,
    /// Background-traffic shape applied to *evaluation* environments
    /// (training always sees the stationary background the paper assumes).
    /// Defaults to [`WorkloadSpec::Stationary`], which is bit-identical to
    /// not setting a workload at all.
    pub workload: WorkloadSpec,
}

impl BenchArgs {
    /// Parses `std::env::args()`: `[--ensemble msd|ligo|gpu-serve]
    /// [--seed N] [--paper] [--iterations N] [--no-cache] [--steady]
    /// [--smoke] [--workload SPEC]` where SPEC is one of `stationary`,
    /// `diurnal`, `trending`, `flash-crowd`, or `trace:<path>`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = BenchArgs {
            ensemble: None,
            seed: 42,
            paper: false,
            iterations: None,
            no_cache: false,
            steady: false,
            smoke: false,
            workload: WorkloadSpec::Stationary,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--ensemble" => {
                    let v = it.next().expect("--ensemble needs a value");
                    args.ensemble = Some(
                        EnsembleKind::parse(&v).expect("ensemble must be msd, ligo or gpu-serve"),
                    );
                }
                "--workload" => {
                    let v = it.next().expect("--workload needs a value");
                    args.workload = WorkloadSpec::parse(&v).expect(
                        "workload must be stationary, diurnal, trending, flash-crowd \
                         or trace:<path>",
                    );
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer");
                }
                "--iterations" => {
                    args.iterations = Some(
                        it.next()
                            .expect("--iterations needs a value")
                            .parse()
                            .expect("iterations must be an integer"),
                    );
                }
                "--paper" => args.paper = true,
                "--no-cache" => args.no_cache = true,
                "--steady" => args.steady = true,
                "--smoke" => args.smoke = true,
                other => panic!(
                    "unknown flag {other}; usage: [--ensemble msd|ligo|gpu-serve] [--seed N] \
                     [--paper] [--iterations N] [--no-cache] [--steady] [--smoke] \
                     [--workload stationary|diurnal|trending|flash-crowd|trace:<path>]"
                ),
            }
        }
        args
    }

    /// The ensembles selected (both when unspecified).
    #[must_use]
    pub fn ensembles(&self) -> Vec<EnsembleKind> {
        match self.ensemble {
            Some(k) => vec![k],
            None => vec![EnsembleKind::Msd, EnsembleKind::Ligo],
        }
    }

    /// The number of outer training iterations: the explicit `--iterations`
    /// value if given, otherwise 2 under `--smoke` and the figures'
    /// default of 12.
    #[must_use]
    pub fn resolved_iterations(&self) -> usize {
        self.iterations.unwrap_or(if self.smoke { 2 } else { 12 })
    }

    /// The MIRAS configuration these arguments select for `kind`:
    /// [`MirasConfig::smoke_test`] under `--smoke`, otherwise the
    /// paper-scale or fast-scale variant per `--paper`.
    #[must_use]
    pub fn miras_config(&self, kind: EnsembleKind) -> MirasConfig {
        if self.smoke {
            MirasConfig::smoke_test(self.seed)
        } else {
            kind.miras_config(self.seed, self.paper)
        }
    }

    /// The evaluation horizon for the comparison figures: 6 windows under
    /// `--smoke`, otherwise the ensemble's paper horizon.
    #[must_use]
    pub fn comparison_steps(&self, kind: EnsembleKind) -> usize {
        if self.smoke {
            6
        } else {
            kind.comparison_steps()
        }
    }
}

/// Opens the standard telemetry stream for a figure binary: a buffered
/// [`JsonlSink`] at `results/<bin_name>.jsonl` (the directory is created;
/// an existing file is truncated). The returned [`Telemetry`] handle is also
/// installed as the `nn` crate's process-global recorder so GEMM and
/// training-batch timings land in the same stream. Call
/// [`Telemetry::flush`] before exiting to emit the aggregate
/// counter/gauge/histogram summary rows.
///
/// If the file cannot be created (e.g. a read-only working directory) the
/// stream falls back to an in-memory buffer with a warning, so the figure
/// still runs.
#[must_use]
pub fn init_telemetry(bin_name: &str) -> (Telemetry, Arc<JsonlSink>) {
    let path = PathBuf::from("results").join(format!("{bin_name}.jsonl"));
    let sink = match JsonlSink::create(&path) {
        Ok(sink) => {
            eprintln!("[telemetry] writing {}", path.display());
            sink
        }
        Err(e) => {
            eprintln!(
                "[telemetry] cannot write {}: {e}; buffering in memory",
                path.display()
            );
            JsonlSink::in_memory()
        }
    };
    // Losses span orders of magnitude above the default (seconds-oriented)
    // bucket bounds; give them their own decades.
    sink.set_buckets(
        "ddpg.critic_loss",
        &[1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6],
    );
    let telemetry = Telemetry::new(sink.clone());
    nn::telemetry::set_global(telemetry.clone());
    (telemetry, sink)
}

/// One evaluated decision window of an allocator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Window index within the run.
    pub step: usize,
    /// Total WIP at the window's end.
    pub total_wip: usize,
    /// Reward `1 − Σ w`.
    pub reward: f64,
    /// Mean response time (seconds) of workflows completing in this window.
    pub response_secs: Option<f64>,
    /// Workflow completions in this window (all types).
    pub completions: usize,
    /// Total consumers the allocator requested.
    pub consumers_used: usize,
}

/// Summary statistics over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Allocator name.
    pub algorithm: String,
    /// Mean response time over windows that had completions.
    pub mean_response_secs: f64,
    /// Response time averaged over the last quarter of the run (the
    /// "long-term" behaviour the paper emphasises).
    pub tail_response_secs: f64,
    /// Total workflow completions.
    pub total_completions: usize,
    /// Aggregated reward.
    pub total_reward: f64,
    /// Final-window total WIP.
    pub final_wip: usize,
}

/// Runs `policy` against a fresh environment for `steps` windows,
/// injecting `burst` at the start (plus the ensemble's default Poisson
/// background), and returns the per-window records.
///
/// The environment is wired to `telemetry`, so each window emits a `window`
/// event at source (see `microsim`); the run itself is announced with one
/// `bench.run` event naming the algorithm, which lets stream consumers
/// attribute the window records that follow. Each decision's latency is
/// observed under `bench.decision_latency`.
pub fn run_allocator(
    kind: EnsembleKind,
    seed: u64,
    burst: Option<&BurstSpec>,
    steps: usize,
    policy: &mut dyn Policy,
    telemetry: &Telemetry,
) -> Vec<StepRecord> {
    let config = EnvConfig::for_ensemble(&kind.ensemble()).with_seed(seed);
    run_allocator_configured(kind, config, burst, steps, policy, telemetry)
}

/// Like [`run_allocator`] but with an explicit environment configuration,
/// so callers can inject faults (consumer crashes, node outages,
/// stragglers, delivery-delay spikes) or otherwise reshape the cluster.
/// Used by the resilience benchmark.
pub fn run_allocator_configured(
    kind: EnsembleKind,
    config: EnvConfig,
    burst: Option<&BurstSpec>,
    steps: usize,
    policy: &mut dyn Policy,
    telemetry: &Telemetry,
) -> Vec<StepRecord> {
    let ensemble = kind.ensemble();
    let seed = config.sim().seed;
    let mut env = MicroserviceEnv::new(ensemble, config);
    env.set_telemetry(telemetry.clone());
    telemetry.event(
        "bench.run",
        &[
            ("ensemble", Value::String(kind.name().to_string())),
            ("algorithm", Value::String(policy.name().to_string())),
            ("steps", Value::UInt(steps as u64)),
            ("seed", Value::UInt(seed)),
        ],
    );
    let _ = env.reset();
    // Trace-replay workloads carry their arrivals in a file rather than a
    // generator; inject them now so they ride the event queue like any
    // other background traffic. All other workload shapes are sampled
    // window-by-window inside `step`.
    let replayed = env
        .load_workload_trace()
        .expect("workload trace file loads");
    if replayed > 0 {
        eprintln!("[workload] replaying {replayed} trace arrivals");
    }
    if let Some(b) = burst {
        env.inject_burst(b);
    }
    let mut records = Vec::with_capacity(steps);
    let mut previous = None;
    for step in 0..steps {
        let wip: Vec<f64> = env.state();
        let decision = policy.decide(&Observation::new(&wip, previous.as_ref(), step));
        telemetry.observe("bench.decision_latency", decision.latency.as_secs_f64());
        let m = decision.allocations;
        let out = env.step(&m);
        records.push(StepRecord {
            step,
            total_wip: out.metrics.total_wip(),
            reward: out.reward,
            response_secs: out.metrics.overall_mean_response_secs(),
            completions: out.metrics.completions.iter().sum(),
            consumers_used: m.iter().sum(),
        });
        previous = Some(out.metrics);
    }
    records
}

/// Summarises a run's records.
#[must_use]
pub fn summarize(algorithm: &str, records: &[StepRecord]) -> RunSummary {
    let responses: Vec<f64> = records.iter().filter_map(|r| r.response_secs).collect();
    let mean = if responses.is_empty() {
        0.0
    } else {
        responses.iter().sum::<f64>() / responses.len() as f64
    };
    let tail_start = records.len() - records.len() / 4;
    let tail: Vec<f64> = records[tail_start..]
        .iter()
        .filter_map(|r| r.response_secs)
        .collect();
    let tail_mean = if tail.is_empty() {
        0.0
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    RunSummary {
        algorithm: algorithm.to_string(),
        mean_response_secs: mean,
        tail_response_secs: tail_mean,
        total_completions: records.iter().map(|r| r.completions).sum(),
        total_reward: records.iter().map(|r| r.reward).sum(),
        final_wip: records.last().map_or(0, |r| r.total_wip),
    }
}

/// Trains a MIRAS agent per `args` (scale, seed, iteration count — see
/// [`BenchArgs::miras_config`] and [`BenchArgs::resolved_iterations`]),
/// returning the per-iteration reports and the final agent. When
/// `read_cache` is set and a previously trained agent exists under
/// `bench_artifacts/`, training is skipped and the reports come back empty;
/// the trained agent is persisted for later binaries whenever `write_cache`
/// is set. `--smoke` runs never touch the cache (their budgets are not
/// comparable). Training is wired to `telemetry`: the trainer emits one
/// `iteration` event per Algorithm 2 iteration and the environment emits
/// `window` events for every real interaction.
pub fn train_miras(
    kind: EnsembleKind,
    args: &BenchArgs,
    read_cache: bool,
    write_cache: bool,
    telemetry: &Telemetry,
) -> (Vec<IterationReport>, MirasAgent) {
    let iterations = args.resolved_iterations();
    let cache = cache_path(kind, args.seed, iterations, args.paper);
    if read_cache && !args.smoke {
        if let Some(agent) = load_cached_agent(&cache) {
            eprintln!("[cache] reusing trained agent from {}", cache.display());
            return (Vec::new(), agent);
        }
    }
    let ensemble = kind.ensemble();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(args.seed);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    env.set_telemetry(telemetry.clone());
    let config = args.miras_config(kind);
    let mut trainer = MirasTrainer::new(&env, config);
    trainer.set_telemetry(telemetry.clone());
    let mut reports = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let report = trainer.run_iteration(&mut env);
        eprintln!(
            "[train {}] iter {:>2}: model_loss={:.4} eval_return={:>10.1} dataset={}",
            kind.name(),
            i,
            report.model_loss,
            report.eval_return,
            report.dataset_size
        );
        reports.push(report);
    }
    let agent = trainer.agent();
    if write_cache && !args.smoke {
        store_cached_agent(&cache, &agent);
    }
    (reports, agent)
}

fn cache_path(kind: EnsembleKind, seed: u64, iterations: usize, paper: bool) -> PathBuf {
    let scale = if paper { "paper" } else { "fast" };
    PathBuf::from("bench_artifacts").join(format!(
        "miras_agent_{}_{scale}_seed{seed}_it{iterations}.json",
        kind.name()
    ))
}

fn load_cached_agent(path: &PathBuf) -> Option<MirasAgent> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_cached_agent(path: &PathBuf, agent: &MirasAgent) {
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    match serde_json::to_string(agent) {
        Ok(json) => {
            if let Err(e) = fs::write(path, json) {
                eprintln!("[cache] could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("[cache] could not serialise agent: {e}"),
    }
}

/// Prints per-step response-time series for several algorithms as an
/// aligned text table (one row per window, one column per algorithm).
pub fn print_response_table(title: &str, series: &[(String, Vec<StepRecord>)]) {
    println!("\n=== {title} ===");
    print!("{:>5}", "step");
    for (name, _) in series {
        print!("{name:>12}");
    }
    println!();
    let steps = series.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
    for step in 0..steps {
        print!("{step:>5}");
        for (_, records) in series {
            match records.get(step).and_then(|r| r.response_secs) {
                Some(r) => print!("{r:>12.1}"),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

/// Prints run summaries as an aligned text table.
pub fn print_summaries(summaries: &[RunSummary]) {
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>14} {:>10}",
        "algorithm", "mean_resp(s)", "tail_resp(s)", "completions", "total_reward", "final_wip"
    );
    for s in summaries {
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>12} {:>14.1} {:>10}",
            s.algorithm,
            s.mean_response_secs,
            s.tail_response_secs,
            s.total_completions,
            s.total_reward,
            s.final_wip
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensemble_kind_round_trips() {
        assert_eq!(EnsembleKind::parse("MSD"), Some(EnsembleKind::Msd));
        assert_eq!(EnsembleKind::parse("ligo"), Some(EnsembleKind::Ligo));
        assert_eq!(
            EnsembleKind::parse("gpu-serve"),
            Some(EnsembleKind::GpuServe)
        );
        assert_eq!(EnsembleKind::parse("bogus"), None);
    }

    #[test]
    fn gpu_serve_kind_is_wired_like_the_paper_ensembles() {
        let kind = EnsembleKind::GpuServe;
        assert_eq!(kind.name(), "gpu-serve");
        assert_eq!(kind.ensemble().num_workflow_types(), 3);
        assert_eq!(kind.burst_scenarios().len(), 3);
        for b in kind.burst_scenarios() {
            assert_eq!(b.counts().len(), 3);
        }
        let cfg = kind.miras_config(5, false);
        assert_eq!(cfg.collect_burst_max, Some(vec![300, 120, 40]));
    }

    #[test]
    fn burst_scenarios_match_paper() {
        let msd = EnsembleKind::Msd.burst_scenarios();
        assert_eq!(msd[0].counts(), &[300, 200, 300]);
        assert_eq!(msd[1].counts(), &[1000, 300, 400]);
        assert_eq!(msd[2].counts(), &[500, 500, 500]);
        let ligo = EnsembleKind::Ligo.burst_scenarios();
        assert_eq!(ligo[0].counts(), &[100, 100, 50, 30]);
        assert_eq!(ligo[1].counts(), &[150, 150, 80, 50]);
        assert_eq!(ligo[2].counts(), &[80, 80, 80, 80]);
    }

    #[test]
    fn run_allocator_produces_full_series() {
        let mut policy =
            by_name("uniform", &PolicyConfig::new(&EnsembleKind::Msd.ensemble())).unwrap();
        let records = run_allocator(
            EnsembleKind::Msd,
            7,
            None,
            5,
            policy.as_mut(),
            &Telemetry::noop(),
        );
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.step, i);
            assert!(r.consumers_used <= 14);
        }
    }

    #[test]
    fn smoke_args_shrink_budgets() {
        let mut args = BenchArgs {
            ensemble: None,
            seed: 1,
            paper: false,
            iterations: None,
            no_cache: false,
            steady: false,
            smoke: true,
            workload: WorkloadSpec::Stationary,
        };
        assert_eq!(args.resolved_iterations(), 2);
        assert_eq!(args.comparison_steps(EnsembleKind::Msd), 6);
        assert_eq!(
            args.miras_config(EnsembleKind::Msd),
            MirasConfig::smoke_test(1)
        );
        args.smoke = false;
        assert_eq!(args.resolved_iterations(), 12);
        assert_eq!(args.comparison_steps(EnsembleKind::Msd), 25);
    }

    #[test]
    fn summary_aggregates_responses() {
        let records = vec![
            StepRecord {
                step: 0,
                total_wip: 10,
                reward: -9.0,
                response_secs: Some(20.0),
                completions: 2,
                consumers_used: 14,
            },
            StepRecord {
                step: 1,
                total_wip: 5,
                reward: -4.0,
                response_secs: None,
                completions: 0,
                consumers_used: 14,
            },
            StepRecord {
                step: 2,
                total_wip: 0,
                reward: 1.0,
                response_secs: Some(10.0),
                completions: 3,
                consumers_used: 14,
            },
        ];
        let s = summarize("test", &records);
        assert!((s.mean_response_secs - 15.0).abs() < 1e-12);
        assert_eq!(s.total_completions, 5);
        assert_eq!(s.final_wip, 0);
    }
}

/// A named environment-fault configuration for the resilience benchmark.
///
/// Applying a scenario to a [`SimConfig`] turns on its fault model while
/// leaving everything else (seed, start-up delays, contention) untouched;
/// the `healthy` scenario is the identity.
#[derive(Clone, Copy)]
pub struct FaultScenario {
    /// Name used in output tables and the `scenario` field of
    /// `bench.summary` telemetry events.
    pub name: &'static str,
    apply: fn(SimConfig) -> SimConfig,
}

impl FaultScenario {
    /// Returns `sim` with this scenario's fault model enabled.
    #[must_use]
    pub fn apply(&self, sim: SimConfig) -> SimConfig {
        (self.apply)(sim)
    }
}

/// The resilience benchmark's scenario suite: a healthy control plus one
/// scenario per fault class in `microsim` — independent consumer crashes,
/// correlated node outages, stragglers, and queue delivery-delay spikes.
/// Rates are chosen so each fault visibly perturbs a 25-window run.
#[must_use]
pub fn fault_scenarios() -> Vec<FaultScenario> {
    vec![
        FaultScenario {
            name: "healthy",
            apply: |s| s,
        },
        FaultScenario {
            name: "crashes",
            apply: |s| s.with_failure_rate(20.0),
        },
        FaultScenario {
            name: "outages",
            apply: |s| s.with_node_model(3, 2.0),
        },
        FaultScenario {
            name: "stragglers",
            apply: |s| s.with_stragglers(0.05, 10.0),
        },
        FaultScenario {
            name: "delays",
            apply: |s| s.with_delivery_delay_spikes(0.10, SimTime::from_secs(10)),
        },
    ]
}

/// Runs the resilience benchmark for one ensemble: MIRAS and all five
/// baselines (`uniform`, `stream`/DRS, `heft`, `monad`, model-free `rl`)
/// under every [`fault_scenarios`] entry, each with the ensemble's first
/// burst scenario on top of the Poisson background.
///
/// Agents are trained once on the *healthy* environment — resilience here
/// means how a policy trained under nominal conditions copes when the
/// cluster degrades. Returns `(scenario, algorithm, records)` tuples and
/// prints a summary table per scenario; every run summary is also emitted
/// as a `bench.summary` telemetry event with a string `scenario` field, so
/// the JSONL stream segments per scenario.
pub fn run_resilience(
    kind: EnsembleKind,
    args: &BenchArgs,
    telemetry: &Telemetry,
) -> Vec<(String, String, Vec<StepRecord>)> {
    let seed = args.seed;
    let ensemble = kind.ensemble();
    let steps = args.comparison_steps(kind);
    let burst = kind.burst_scenarios().remove(0);

    // Train MIRAS (or load the cached agent) and the model-free baseline on
    // the healthy environment, exactly as the comparison figures do.
    let (_, miras_agent) = train_miras(kind, args, !args.no_cache, true, telemetry);
    let miras_cfg = args.miras_config(kind);
    let interaction_budget =
        args.resolved_iterations() * (miras_cfg.real_steps_per_iter + miras_cfg.eval_steps);
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed.wrapping_add(7));
    let mut mf_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    mf_env.set_telemetry(telemetry.clone());
    let model_free = baselines::train_model_free(
        &mut mf_env,
        interaction_budget,
        miras_cfg.reset_every,
        miras_cfg.ddpg.clone(),
        miras_cfg.collect_burst_max.as_deref(),
    );

    // Fan the scenario × algorithm grid out across worker threads. Every
    // cell builds its own allocator and environment from cloned inputs and
    // records into a private buffer, so the numbers are identical to a
    // sequential sweep; buffers are replayed in cell order afterwards, so
    // the telemetry stream is too.
    let scenarios = fault_scenarios();
    let algorithms = RESILIENCE_ALGORITHMS;
    let enabled = telemetry.is_enabled();
    let policy_cfg = PolicyConfig::new(&ensemble)
        .with_miras_agent(miras_agent)
        .with_model_free(model_free.agent().clone());
    let mut tasks: Vec<Box<dyn FnOnce() -> GridCell + Send + '_>> = Vec::new();
    for scenario in &scenarios {
        let base = EnvConfig::for_ensemble(&ensemble)
            .with_seed(seed)
            .with_workload(args.workload.clone());
        let config = base.clone().with_sim(scenario.apply(base.sim().clone()));
        for &algorithm in algorithms {
            let config = config.clone();
            let policy_cfg = policy_cfg.clone();
            let burst = &burst;
            tasks.push(Box::new(move || {
                let buffer = Arc::new(BufferedRecorder::new());
                let cell_telemetry = if enabled {
                    Telemetry::new(buffer.clone())
                } else {
                    Telemetry::noop()
                };
                let mut policy =
                    by_name(algorithm, &policy_cfg).expect("grid algorithms are registered");
                let records = run_allocator_configured(
                    kind,
                    config,
                    Some(burst),
                    steps,
                    policy.as_mut(),
                    &cell_telemetry,
                );
                GridCell {
                    name: algorithm.to_string(),
                    records,
                    buffer,
                }
            }));
        }
    }
    let cells = run_grid(tasks);

    let mut results = Vec::new();
    for (scenario, row) in scenarios.iter().zip(cells.chunks(algorithms.len())) {
        let mut summaries = Vec::new();
        for cell in row {
            cell.buffer.replay(telemetry);
            summaries.push(summarize(&cell.name, &cell.records));
        }
        if telemetry.is_enabled() {
            for summary in &summaries {
                if let Ok(Value::Object(mut fields)) = serde::value::to_value(summary) {
                    fields.push((
                        "scenario".to_string(),
                        Value::String(scenario.name.to_string()),
                    ));
                    telemetry.event_struct("bench.summary", &Value::Object(fields));
                }
            }
        }

        println!(
            "\n=== {} resilience — scenario `{}` (burst {:?}, {} windows) ===",
            kind.name().to_uppercase(),
            scenario.name,
            burst.counts(),
            steps
        );
        print_summaries(&summaries);
        for cell in row {
            results.push((
                scenario.name.to_string(),
                cell.name.clone(),
                cell.records.clone(),
            ));
        }
    }
    results
}

/// The algorithm roster of the resilience grid, in output order. The names
/// are the allocators' own [`Allocator::name`] values.
const RESILIENCE_ALGORITHMS: &[&str] = &["miras", "uniform", "stream", "heft", "monad", "rl"];

/// The algorithm roster of the comparison grid (Figs. 7–8), in output order.
const COMPARISON_ALGORITHMS: &[&str] = &["miras", "stream", "heft", "monad", "rl"];

/// One completed evaluation-grid cell: the algorithm's name, its per-window
/// records, and the telemetry it captured while running.
struct GridCell {
    name: String,
    records: Vec<StepRecord>,
    buffer: Arc<BufferedRecorder>,
}

/// Runs the paper's five-algorithm comparison (Figs. 7 and 8) for one
/// ensemble: MIRAS vs `stream` (DRS), `heft`, `monad`, and `rl` (model-free
/// DDPG with the same real-interaction budget), across the paper's three
/// burst scenarios. Returns `(scenario, algorithm, records)` tuples and
/// prints tables along the way; every run summary is also emitted as a
/// `bench.summary` telemetry event.
pub fn run_comparison(
    kind: EnsembleKind,
    args: &BenchArgs,
    telemetry: &Telemetry,
) -> Vec<(usize, String, Vec<StepRecord>)> {
    let seed = args.seed;
    let ensemble = kind.ensemble();
    let steps = args.comparison_steps(kind);

    // MIRAS: train (or load) the model-based agent.
    let (_, miras_agent) = train_miras(kind, args, !args.no_cache, true, telemetry);

    // Model-free DDPG with the same number of real interactions (§VI-D).
    let miras_cfg = args.miras_config(kind);
    let interaction_budget =
        args.resolved_iterations() * (miras_cfg.real_steps_per_iter + miras_cfg.eval_steps);
    eprintln!(
        "[train {}] model-free DDPG with {} real interactions",
        kind.name(),
        interaction_budget
    );
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed.wrapping_add(7));
    let mut mf_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    mf_env.set_telemetry(telemetry.clone());
    let model_free = baselines::train_model_free(
        &mut mf_env,
        interaction_budget,
        miras_cfg.reset_every,
        miras_cfg.ddpg.clone(),
        miras_cfg.collect_burst_max.as_deref(),
    );

    // Fan the burst-scenario × algorithm grid out across worker threads;
    // see `run_resilience` for the determinism contract.
    let bursts = kind.burst_scenarios();
    let algorithms = COMPARISON_ALGORITHMS;
    let enabled = telemetry.is_enabled();
    let policy_cfg = PolicyConfig::new(&ensemble)
        .with_miras_agent(miras_agent)
        .with_model_free(model_free.agent().clone());
    let mut tasks: Vec<Box<dyn FnOnce() -> GridCell + Send + '_>> = Vec::new();
    for burst in &bursts {
        for &algorithm in algorithms {
            let policy_cfg = policy_cfg.clone();
            let config = EnvConfig::for_ensemble(&ensemble)
                .with_seed(seed)
                .with_workload(args.workload.clone());
            tasks.push(Box::new(move || {
                let buffer = Arc::new(BufferedRecorder::new());
                let cell_telemetry = if enabled {
                    Telemetry::new(buffer.clone())
                } else {
                    Telemetry::noop()
                };
                let mut policy =
                    by_name(algorithm, &policy_cfg).expect("grid algorithms are registered");
                let records = run_allocator_configured(
                    kind,
                    config,
                    Some(burst),
                    steps,
                    policy.as_mut(),
                    &cell_telemetry,
                );
                GridCell {
                    name: algorithm.to_string(),
                    records,
                    buffer,
                }
            }));
        }
    }
    let cells = run_grid(tasks);

    let mut results = Vec::new();
    for (scenario, (burst, row)) in bursts
        .iter()
        .zip(cells.chunks(algorithms.len()))
        .enumerate()
    {
        let mut series: Vec<(String, Vec<StepRecord>)> = Vec::new();
        let mut summaries = Vec::new();
        for cell in row {
            cell.buffer.replay(telemetry);
            summaries.push(summarize(&cell.name, &cell.records));
            series.push((cell.name.clone(), cell.records.clone()));
        }
        if telemetry.is_enabled() {
            for summary in &summaries {
                if let Ok(Value::Object(mut fields)) = serde::value::to_value(summary) {
                    fields.push(("scenario".to_string(), Value::UInt(scenario as u64)));
                    telemetry.event_struct("bench.summary", &Value::Object(fields));
                }
            }
        }

        print_response_table(
            &format!(
                "{} burst {} {:?} — mean response time (s) per 30 s window",
                kind.name().to_uppercase(),
                scenario + 1,
                burst.counts()
            ),
            &series,
        );
        println!();
        print_summaries(&summaries);
        for (name, records) in series {
            results.push((scenario, name, records));
        }
    }
    results
}

/// The generator-backed workload shapes the `workload_grid` benchmark
/// sweeps by default (trace replay is added separately by recording a
/// stationary run first — see [`record_background_trace`]).
#[must_use]
pub fn workload_zoo() -> Vec<WorkloadSpec> {
    ["stationary", "diurnal", "trending", "flash-crowd"]
        .iter()
        .map(|name| WorkloadSpec::parse(name).expect("zoo entries are known specs"))
        .collect()
}

/// Records `steps` decision windows of the ensemble's stationary Poisson
/// background and writes the arrivals as a JSONL trace under `results/`,
/// for replay via [`WorkloadSpec::TraceReplay`]. Background arrivals are
/// policy-independent (the arrival RNG never sees allocations), so a trace
/// recorded under any allocator replays identically under all of them.
/// Returns the trace path.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the trace file.
pub fn record_background_trace(
    kind: EnsembleKind,
    seed: u64,
    steps: usize,
) -> std::io::Result<PathBuf> {
    let ensemble = kind.ensemble();
    let budget = ensemble.default_consumer_budget();
    let j = ensemble.num_task_types();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.record_trace();
    let action = vec![(budget / j).max(1); j];
    for _ in 0..steps {
        let _ = env.step(&action);
    }
    let trace = env.take_recorded_trace();
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("workload_trace_{}.jsonl", kind.name()));
    trace.save_jsonl(&path)?;
    eprintln!(
        "[workload] recorded {} arrivals over {steps} windows to {}",
        trace.len(),
        path.display()
    );
    Ok(path)
}

/// Runs the workload grid for one ensemble: MIRAS and the comparison
/// baselines under every given workload shape, burst-free so the background
/// shape itself is the stressor. Agents are trained once on the stationary
/// background (the regime the paper's training protocol assumes); the grid
/// then measures how those policies cope when the traffic drifts, cycles,
/// spikes, or follows a recorded trace.
///
/// Returns `(workload, algorithm, records)` tuples and prints a summary
/// table per workload; every run summary is also emitted as a
/// `bench.summary` telemetry event with a string `workload` field.
pub fn run_workload_grid(
    kind: EnsembleKind,
    args: &BenchArgs,
    workloads: &[WorkloadSpec],
    telemetry: &Telemetry,
) -> Vec<(String, String, Vec<StepRecord>)> {
    let seed = args.seed;
    let ensemble = kind.ensemble();
    let steps = args.comparison_steps(kind);

    let (_, miras_agent) = train_miras(kind, args, !args.no_cache, true, telemetry);
    let miras_cfg = args.miras_config(kind);
    let interaction_budget =
        args.resolved_iterations() * (miras_cfg.real_steps_per_iter + miras_cfg.eval_steps);
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed.wrapping_add(7));
    let mut mf_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    mf_env.set_telemetry(telemetry.clone());
    let model_free = baselines::train_model_free(
        &mut mf_env,
        interaction_budget,
        miras_cfg.reset_every,
        miras_cfg.ddpg.clone(),
        miras_cfg.collect_burst_max.as_deref(),
    );

    // Fan the workload × algorithm grid out across worker threads; see
    // `run_resilience` for the determinism contract.
    let algorithms = COMPARISON_ALGORITHMS;
    let enabled = telemetry.is_enabled();
    let policy_cfg = PolicyConfig::new(&ensemble)
        .with_miras_agent(miras_agent)
        .with_model_free(model_free.agent().clone());
    let mut tasks: Vec<Box<dyn FnOnce() -> GridCell + Send + '_>> = Vec::new();
    for workload in workloads {
        let config = EnvConfig::for_ensemble(&ensemble)
            .with_seed(seed)
            .with_workload(workload.clone());
        for &algorithm in algorithms {
            let policy_cfg = policy_cfg.clone();
            let config = config.clone();
            tasks.push(Box::new(move || {
                let buffer = Arc::new(BufferedRecorder::new());
                let cell_telemetry = if enabled {
                    Telemetry::new(buffer.clone())
                } else {
                    Telemetry::noop()
                };
                let mut policy =
                    by_name(algorithm, &policy_cfg).expect("grid algorithms are registered");
                let records = run_allocator_configured(
                    kind,
                    config,
                    None,
                    steps,
                    policy.as_mut(),
                    &cell_telemetry,
                );
                GridCell {
                    name: algorithm.to_string(),
                    records,
                    buffer,
                }
            }));
        }
    }
    let cells = run_grid(tasks);

    let mut results = Vec::new();
    for (workload, row) in workloads.iter().zip(cells.chunks(algorithms.len())) {
        let mut summaries = Vec::new();
        for cell in row {
            cell.buffer.replay(telemetry);
            summaries.push(summarize(&cell.name, &cell.records));
        }
        if telemetry.is_enabled() {
            for summary in &summaries {
                if let Ok(Value::Object(mut fields)) = serde::value::to_value(summary) {
                    fields.push((
                        "workload".to_string(),
                        Value::String(workload.name().to_string()),
                    ));
                    telemetry.event_struct("bench.summary", &Value::Object(fields));
                }
            }
        }

        println!(
            "\n=== {} workload `{}` ({} windows, no burst) ===",
            kind.name().to_uppercase(),
            workload.name(),
            steps
        );
        print_summaries(&summaries);
        for cell in row {
            results.push((
                workload.name().to_string(),
                cell.name.clone(),
                cell.records.clone(),
            ));
        }
    }
    results
}
