//! Workload scenario grid: MIRAS vs the comparison baselines under every
//! background-traffic shape in the workload zoo.
//!
//! The paper trains and evaluates under a stationary Poisson background;
//! this benchmark asks how the same policies fare when the background
//! drifts (`trending`), cycles (`diurnal`), spikes (`flash-crowd`), or
//! replays a recorded arrival trace (`trace-replay` — recorded on the fly
//! from a stationary run, since background arrivals are
//! policy-independent). Training always happens on the stationary
//! background; only the evaluation environments get the workload shape.
//!
//! Run: `cargo run -p miras-bench --release --bin workload_grid`
//! (add `--smoke` for a seconds-scale CI run, `--workload SPEC` to sweep a
//! single shape, `--ensemble msd|ligo|gpu-serve` to pick an ensemble).

use microsim::WorkloadSpec;
use miras_bench::{record_background_trace, run_workload_grid, workload_zoo, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("workload_grid");
    println!(
        "Workload grid — scenario zoo comparison (seed {}, {} scale)",
        args.seed,
        if args.paper { "paper" } else { "fast" }
    );
    for kind in args.ensembles() {
        // An explicit non-stationary `--workload` narrows the sweep to that
        // one shape; the default sweeps the whole zoo plus a trace replay.
        let workloads: Vec<WorkloadSpec> = if args.workload == WorkloadSpec::Stationary {
            let mut zoo = workload_zoo();
            let trace_windows = if args.smoke { 4 } else { 10 };
            match record_background_trace(kind, args.seed, trace_windows) {
                Ok(path) => zoo.push(WorkloadSpec::TraceReplay {
                    path: path.display().to_string(),
                }),
                Err(e) => eprintln!(
                    "[workload] cannot record a trace for {}: {e}; skipping trace-replay",
                    kind.name()
                ),
            }
            zoo
        } else {
            vec![args.workload.clone()]
        };
        let _ = run_workload_grid(kind, &args, &workloads, &telemetry);
    }
    telemetry.flush();
}
