//! Figure 7: MSD response-time comparison under bursts.
//!
//! Reproduces §VI-D for the MSD ensemble: MIRAS vs `stream` (DRS), `heft`,
//! `monad` (MPC), and `rl` (model-free DDPG at the same real-interaction
//! budget), under the paper's three bursts — (300, 200, 300),
//! (1000, 300, 400), and (500, 500, 500) requests of Type1–Type3 injected
//! at the start on top of the continuous Poisson background — with the
//! consumer constraint C = 14.
//!
//! Expected shape (paper): MIRAS is significantly better than the other
//! algorithms on MSD, especially in long-term (tail) response time.
//!
//! Run: `cargo run -p miras-bench --release --bin fig7_msd_comparison`

use miras_bench::{run_comparison, BenchArgs, EnsembleKind};

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("fig7_msd_comparison");
    println!(
        "Fig. 7 reproduction — MSD comparison (seed {}, {} scale)",
        args.seed,
        if args.paper { "paper" } else { "fast" }
    );
    let _ = run_comparison(EnsembleKind::Msd, &args, &telemetry);
    telemetry.flush();
}
