//! Distributed actor–learner rollout throughput: workers × lanes sweep.
//!
//! Measures synthetic-environment steps per second of the distributed
//! inner loop (`miras_core::distributed`) at several worker counts and
//! lane widths, against the sequential single-env baseline, with gradient
//! updates disabled (`DistributedParams::train = false`) so the numbers
//! isolate the rollout engine exactly like `rollout_throughput` does.
//!
//! `workers = 1` is the synchronous remote-environment path (two channel
//! hand-offs per environment step); `workers ≥ 2` is the asynchronous
//! frozen-version path (one hand-off per *wave*), so the sweep quantifies
//! what version-lag asynchrony buys even on a single core.
//!
//! Results are merged into `BENCH_rollout.json` under a `distributed` key
//! — the lockstep rows written by `rollout_throughput` are preserved — and
//! telemetry streams to `results/train_throughput.jsonl`, including the
//! per-wave `train.worker_steps` / `train.weight_version_lag` /
//! `train.replay_shard_depth` rows that
//! `telemetry_check --require-distributed` validates.
//!
//! Usage: `train_throughput [--seed N] [--smoke] [--steps N]`
//! (`--steps` is the per-configuration environment-step budget).

use std::time::Instant;

use miras_bench::{drain_dataset, init_telemetry, time_sequential_rollouts};
use miras_core::distributed::{run_distributed_rollouts, DistributedParams};
use miras_core::{MirasConfig, RefinedModel, TransitionDataset};
use rl::{Ddpg, TrainHealth};
use serde::Serialize;
use telemetry::Value;

/// Worker counts exercised by the full sweep (`--smoke` stops at 2).
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Lane widths exercised per worker count (`--smoke` keeps only the
/// middle width). `lanes = 1` is the classic one-env-per-actor shape,
/// where per-step synchronisation dominates the synchronous path.
const LANE_SWEEP: [usize; 3] = [1, 4, 16];

#[derive(Debug, Clone, Serialize)]
struct DistRow {
    mode: String,
    workers: usize,
    lanes: usize,
    env_steps: usize,
    secs: f64,
    steps_per_sec: f64,
    /// Throughput over the same-run sequential baseline.
    speedup_vs_sequential: f64,
    /// Throughput over the `workers = 1` row at the same lane width
    /// (1.0 for that row itself; the sequential row reports 1/workers-1
    /// speedup against itself as 1.0 too, for uniformity).
    speedup_vs_workers1: f64,
}

/// Times one distributed configuration: an untimed warm-up loop of one
/// wave per worker (thread spawn, shard, and normaliser costs reach steady
/// state), then the measured run. Returns `(env_steps, secs)`.
#[allow(clippy::too_many_arguments)]
fn time_distributed(
    refined: &RefinedModel,
    data: &TransitionDataset,
    config: &MirasConfig,
    budget: usize,
    workers: usize,
    lanes: usize,
    env_steps: usize,
    seed: u64,
    telemetry: &telemetry::Telemetry,
) -> (usize, f64) {
    let j = data.state_dim();
    let mut agent = Ddpg::new(j, j, config.ddpg.clone());
    let mut health = TrainHealth::default_policy();
    let params = |rollouts: usize| DistributedParams {
        workers,
        lanes,
        rollout_len: config.rollout_len,
        rollouts,
        patience: 0,
        consumer_budget: budget,
        synth_seed: seed,
        train: false,
        schedule: None,
        fault: None,
    };
    run_distributed_rollouts(
        &mut agent,
        refined.clone(),
        data,
        &params(workers * lanes),
        &mut health,
        &telemetry::Telemetry::noop(),
    )
    .expect("warm-up rollouts never train, so they cannot trip the watchdog");
    let rollouts = (env_steps / config.rollout_len).max(workers * lanes);
    let start = Instant::now();
    let outcome = run_distributed_rollouts(
        &mut agent,
        refined.clone(),
        data,
        &params(rollouts),
        &mut health,
        telemetry,
    )
    .expect("observe-only rollouts cannot trip the watchdog");
    (outcome.env_steps as usize, start.elapsed().as_secs_f64())
}

/// Merges the distributed rows into `BENCH_rollout.json`, preserving
/// whatever `rollout_throughput` wrote there (sequential + lockstep rows);
/// if the file is missing or unreadable a fresh report is started.
fn merge_into_bench_json(rows: &[DistRow], speedup_w4_vs_w1: f64) {
    use serde::value::Value as Json;
    let path = "BENCH_rollout.json";
    let existing = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Json>(&text).ok());
    let mut fields = match existing {
        Some(Json::Object(fields)) => fields,
        _ => vec![(
            "bench".to_string(),
            Json::String("rollout_throughput".to_string()),
        )],
    };
    fields.retain(|(k, _)| k != "distributed" && k != "speedup_workers4_vs_workers1");
    match serde::value::to_value(rows) {
        Ok(rows) => fields.push(("distributed".to_string(), rows)),
        Err(e) => {
            eprintln!("[train] could not serialise distributed rows: {e}");
            return;
        }
    }
    fields.push((
        "speedup_workers4_vs_workers1".to_string(),
        Json::Float(speedup_w4_vs_w1),
    ));
    match serde_json::to_string(&Json::Object(fields)) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("[train] could not write {path}: {e}");
            } else {
                eprintln!("[train] merged distributed rows into {path}");
            }
        }
        Err(e) => eprintln!("[train] could not serialise report: {e}"),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut smoke = false;
    let mut steps_override: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--steps" => {
                steps_override = Some(
                    it.next()
                        .expect("--steps needs a value")
                        .parse()
                        .expect("steps must be an integer"),
                );
            }
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; usage: [--seed N] [--smoke] [--steps N]"),
        }
    }

    let (telemetry, sink) = init_telemetry("train_throughput");
    let config = MirasConfig::msd_fast(seed);
    let j = 4usize;
    let budget = 14usize;
    let env_steps = steps_override.unwrap_or(if smoke { 3_200 } else { 32_000 });
    let workers_sweep: Vec<usize> = WORKER_SWEEP
        .into_iter()
        .filter(|&w| !smoke || w <= 2)
        .collect();
    let lanes_sweep: Vec<usize> = if smoke {
        vec![LANE_SWEEP[1]]
    } else {
        LANE_SWEEP.to_vec()
    };

    eprintln!("[train] training environment model ({j}-dim drain dynamics)");
    let data = drain_dataset(j, seed);
    let mut model = miras_core::DynamicsModel::new(j, &config);
    let loss = model.train(&data, 10, config.model_batch);
    eprintln!("[train] model loss {loss:.5}; timing {env_steps} env steps per configuration");
    let refined = RefinedModel::fit(model, &data, config.refine_percentile);

    let mut rows = Vec::new();
    {
        let mut agent = Ddpg::new(j, j, config.ddpg.clone());
        let (steps, secs) = time_sequential_rollouts(
            &refined,
            &data,
            budget,
            &mut agent,
            config.rollout_len,
            env_steps,
            &telemetry,
        );
        rows.push(DistRow {
            mode: "sequential".to_string(),
            workers: 0,
            lanes: 1,
            env_steps: steps,
            secs,
            steps_per_sec: steps as f64 / secs,
            speedup_vs_sequential: 1.0,
            speedup_vs_workers1: 1.0,
        });
        eprintln!(
            "[train] {:>11} lanes={:<3} {:>9.0} steps/s",
            "sequential", 1, rows[0].steps_per_sec
        );
    }
    for &lanes in &lanes_sweep {
        for &workers in &workers_sweep {
            let (steps, secs) = time_distributed(
                &refined, &data, &config, budget, workers, lanes, env_steps, seed, &telemetry,
            );
            let sps = steps as f64 / secs;
            rows.push(DistRow {
                mode: "distributed".to_string(),
                workers,
                lanes,
                env_steps: steps,
                secs,
                steps_per_sec: sps,
                speedup_vs_sequential: 0.0, // filled below
                speedup_vs_workers1: 0.0,   // filled below
            });
            eprintln!("[train] workers={workers:<2} lanes={lanes:<3} {sps:>9.0} steps/s");
        }
    }

    let sequential_sps = rows[0].steps_per_sec;
    let workers1_sps = |lanes: usize| {
        rows.iter()
            .find(|r| r.mode == "distributed" && r.workers == 1 && r.lanes == lanes)
            .map_or(f64::NAN, |r| r.steps_per_sec)
    };
    let baselines: Vec<f64> = rows.iter().map(|r| workers1_sps(r.lanes)).collect();
    for (r, &w1) in rows.iter_mut().zip(&baselines).skip(1) {
        r.speedup_vs_sequential = r.steps_per_sec / sequential_sps;
        r.speedup_vs_workers1 = r.steps_per_sec / w1;
    }
    // The acceptance headline: workers = 4 over workers = 1 at the same
    // lane width (best across the swept widths; the full sweep reports
    // every width in its own row).
    let speedup_w4_vs_w1 = rows
        .iter()
        .filter(|r| r.mode == "distributed" && r.workers == 4)
        .map(|r| r.speedup_vs_workers1)
        .fold(0.0, f64::max);

    println!("\ndistributed rollout throughput (steps/sec), {env_steps} env steps per config:");
    for r in &rows {
        println!(
            "  {:>11} workers={:<2} lanes={:<3} {:>10.0} steps/s  ({:>5.2}x vs sequential, {:>5.2}x vs workers=1)",
            r.mode, r.workers, r.lanes, r.steps_per_sec, r.speedup_vs_sequential, r.speedup_vs_workers1
        );
    }
    if speedup_w4_vs_w1 > 0.0 {
        println!("  workers=4 vs workers=1 (same lanes, best width): {speedup_w4_vs_w1:.2}x");
    }

    for r in &rows {
        telemetry.event(
            "train.bench",
            &[
                ("mode", Value::String(r.mode.clone())),
                ("workers", Value::UInt(r.workers as u64)),
                ("lanes", Value::UInt(r.lanes as u64)),
                ("env_steps", Value::UInt(r.env_steps as u64)),
                ("steps_per_sec", Value::Float(r.steps_per_sec)),
                (
                    "speedup_vs_sequential",
                    Value::Float(r.speedup_vs_sequential),
                ),
                ("speedup_vs_workers1", Value::Float(r.speedup_vs_workers1)),
            ],
        );
    }

    merge_into_bench_json(&rows, speedup_w4_vs_w1);
    telemetry.flush();
    drop(sink);
}
