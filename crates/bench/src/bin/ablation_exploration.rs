//! Ablation A3: parameter-space vs action-space exploration (paper §IV-D).
//!
//! The paper's argument for parameter noise: action-space noise added to the
//! softmax output frequently leaves the probability simplex — i.e. violates
//! the consumer-budget constraint — producing invalid explorations, while
//! parameter noise perturbs the network weights so every explored action is
//! still a valid distribution.
//!
//! Two measurements:
//!
//! 1. **Violation rate** — fraction of raw (unprojected) exploratory
//!    actions that leave the simplex, for both exploration modes.
//! 2. **Training quality** — MIRAS eval return per iteration when the
//!    inner DDPG explores with parameter noise vs (projected) action noise.
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_exploration`

use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::{BenchArgs, EnsembleKind};
use miras_core::{ClusterEnvAdapter, MirasTrainer};
use rl::{Ddpg, DdpgConfig, Exploration};

fn violation_rate(exploration: Exploration, seed: u64) -> f64 {
    let mut config = DdpgConfig::small_test(seed);
    config.exploration = exploration;
    let mut agent = Ddpg::new(4, 4, config);
    let mut violations = 0usize;
    let trials = 2000;
    for i in 0..trials {
        let state = [
            (i % 37) as f64,
            (i % 11) as f64,
            (i % 5) as f64,
            (i % 3) as f64,
        ];
        let a = agent.act_exploratory_unprojected(&state);
        let sum: f64 = a.iter().sum();
        if (sum - 1.0).abs() > 1e-6 || a.iter().any(|&p| p < 0.0) {
            violations += 1;
        }
    }
    violations as f64 / trials as f64
}

fn training_quality(
    kind: EnsembleKind,
    seed: u64,
    iterations: usize,
    telemetry: &telemetry::Telemetry,
) {
    for (label, action_noise) in [("parameter noise", false), ("action noise", true)] {
        let ensemble = kind.ensemble();
        let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
        env.set_telemetry(telemetry.clone());
        let mut config = kind.miras_config(seed, false);
        if action_noise {
            config = config.with_action_noise(0.15, 0.2);
        }
        let mut trainer = MirasTrainer::new(&env, config);
        trainer.set_telemetry(telemetry.clone());
        print!("  {label:>16}: eval returns =");
        for _ in 0..iterations {
            let r = trainer.run_iteration(&mut env);
            print!(" {:.0}", r.eval_return);
        }
        println!();
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_exploration");
    let iterations = args.iterations.unwrap_or(6);
    println!("Ablation A3 — exploration strategy (seed {})\n", args.seed);

    println!("raw-action constraint-violation rate (2000 exploratory actions):");
    let param = violation_rate(
        Exploration::ParamNoise {
            initial_sigma: 0.05,
            delta: 0.1,
            alpha: 1.01,
            resample_every: 25,
        },
        args.seed,
    );
    let action = violation_rate(
        Exploration::ActionNoise {
            theta: 0.15,
            sigma: 0.2,
        },
        args.seed,
    );
    println!("  parameter-space noise: {:.1}%", param * 100.0);
    println!("  action-space noise   : {:.1}%", action * 100.0);
    println!("(paper: action-space noise 'often violates our constraints on total number of consumers')\n");

    for kind in args.ensembles() {
        println!(
            "##### {} — training with each exploration mode #####",
            kind.name().to_uppercase()
        );
        training_quality(kind, args.seed, iterations, &telemetry);
        println!();
    }
    telemetry.flush();
}
