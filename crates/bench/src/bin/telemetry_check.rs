//! Validates the telemetry JSONL stream a figure binary produced.
//!
//! Used by CI after a `--smoke` figure run: checks every line parses as a
//! JSON object with the record envelope (a `schema_version` stamp matching
//! this build's `telemetry::SCHEMA_VERSION`, `t`, and the type-specific
//! fields), that event sequence numbers increase, and that the stream
//! contains the records the MIRAS pipeline is expected to emit — per-window `window`
//! events and (when `--require-training` is passed) per-iteration
//! `iteration` events from Algorithm 2. With `--require-rollout` the window
//! requirement is replaced by a check for `rollout.bench` throughput events
//! (the rollout engine benchmark never runs the cluster emulator, so it has
//! no decision windows). With `--require-distributed` it is instead replaced
//! by a check for the distributed actor–learner records — `train.worker_steps`
//! counters, `train.weight_version_lag` / `train.replay_shard_depth` gauges,
//! `distributed.wave` events, and the `train.worker_restarts` counter the
//! learner materialises even at zero. With `--require-serve` it is replaced by a check
//! for the serving loop's records — `serve.decisions` counters, the final
//! `serve.latency_p99_us` gauge, and the overload counters
//! (`serve.shed`, `serve.degraded`, `serve.wire_rejected`,
//! `serve.retries`), which the hardened loop materialises even at zero —
//! since `miras-serve` only decides, never simulates. With
//! `--require-workload` (additive, like `--require-training`) the stream
//! must also carry per-window `workload.target_rate` events from the
//! workload generator.
//!
//! Run: `cargo run -p miras-bench --bin telemetry_check -- \
//!       results/fig7_msd_comparison.jsonl --require-training`
//!
//! Exits non-zero with a description of the first problem found.

use std::process::ExitCode;

use serde::value::Value;

/// Looks up a key in an object-shaped value.
fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn is_number(value: &Value) -> bool {
    matches!(value, Value::Int(_) | Value::UInt(_) | Value::Float(_))
}

/// One validation failure: line number (1-based) plus description.
struct Problem(usize, String);

fn check(
    text: &str,
    require_training: bool,
    require_rollout: bool,
    require_serve: bool,
    require_distributed: bool,
    require_workload: bool,
) -> Result<String, Problem> {
    let mut events = 0usize;
    let mut windows = 0usize;
    let mut iterations = 0usize;
    let mut summaries = 0usize;
    let mut rollouts = 0usize;
    let mut workload_rates = 0usize;
    let mut serve_decisions = 0usize;
    let mut serve_p99 = 0usize;
    // The overload/robustness counters the hardened serving loop must
    // always materialise, even at zero (DecisionService::finish forces a
    // zero-delta row for each).
    const SERVE_COUNTERS: [&str; 4] = [
        "serve.shed",
        "serve.degraded",
        "serve.wire_rejected",
        "serve.retries",
    ];
    let mut serve_counter_rows = [0usize; SERVE_COUNTERS.len()];
    let mut worker_steps = 0usize;
    let mut version_lag = 0usize;
    let mut shard_depth = 0usize;
    let mut worker_restarts = 0usize;
    let mut dist_waves = 0usize;
    let mut desim_pending = 0usize;
    let mut desim_cascades = 0usize;
    let mut last_seq: Option<u64> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| Problem(lineno, format!("not valid JSON: {e}")))?;
        let schema = get(&value, "schema_version")
            .and_then(as_u64)
            .ok_or_else(|| Problem(lineno, "record has no `schema_version` field".into()))?;
        if schema != u64::from(telemetry::SCHEMA_VERSION) {
            return Err(Problem(
                lineno,
                format!(
                    "unknown schema_version {schema} (this build reads {})",
                    telemetry::SCHEMA_VERSION
                ),
            ));
        }
        let t = get(&value, "t")
            .and_then(as_str)
            .ok_or_else(|| Problem(lineno, "record has no string `t` field".into()))?;
        match t {
            "event" => {
                events += 1;
                let name = get(&value, "name")
                    .and_then(as_str)
                    .ok_or_else(|| Problem(lineno, "event has no `name`".into()))?;
                let seq = get(&value, "seq")
                    .and_then(as_u64)
                    .ok_or_else(|| Problem(lineno, "event has no `seq`".into()))?;
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        return Err(Problem(
                            lineno,
                            format!("event seq {seq} does not increase past {prev}"),
                        ));
                    }
                }
                last_seq = Some(seq);
                let data = get(&value, "data")
                    .ok_or_else(|| Problem(lineno, "event has no `data`".into()))?;
                match name {
                    "window" => {
                        windows += 1;
                        for field in ["window_index", "wip", "reward", "arrivals", "completions"] {
                            if get(data, field).is_none() {
                                return Err(Problem(
                                    lineno,
                                    format!("window event missing `{field}`"),
                                ));
                            }
                        }
                        if !is_number(get(data, "reward").expect("checked above")) {
                            return Err(Problem(lineno, "window `reward` is not numeric".into()));
                        }
                    }
                    "iteration" => {
                        iterations += 1;
                        for field in [
                            "iteration",
                            "model_loss",
                            "dataset_size",
                            "eval_return",
                            "lend_triggers",
                            "reward_gap_per_step",
                        ] {
                            if get(data, field).is_none() {
                                return Err(Problem(
                                    lineno,
                                    format!("iteration event missing `{field}`"),
                                ));
                            }
                        }
                    }
                    "bench.summary" => summaries += 1,
                    "workload.target_rate" => {
                        workload_rates += 1;
                        for field in ["window_index", "workload", "factor", "rate_per_sec"] {
                            if get(data, field).is_none() {
                                return Err(Problem(
                                    lineno,
                                    format!("workload.target_rate event missing `{field}`"),
                                ));
                            }
                        }
                        for field in ["factor", "rate_per_sec"] {
                            if !is_number(get(data, field).expect("checked above")) {
                                return Err(Problem(
                                    lineno,
                                    format!("workload.target_rate `{field}` is not numeric"),
                                ));
                            }
                        }
                    }
                    "distributed.wave" => {
                        dist_waves += 1;
                        for field in ["worker", "wave", "version"] {
                            if get(data, field).is_none() {
                                return Err(Problem(
                                    lineno,
                                    format!("distributed.wave event missing `{field}`"),
                                ));
                            }
                        }
                    }
                    "rollout.bench" => {
                        rollouts += 1;
                        for field in ["mode", "lanes", "env_steps", "steps_per_sec"] {
                            if get(data, field).is_none() {
                                return Err(Problem(
                                    lineno,
                                    format!("rollout.bench event missing `{field}`"),
                                ));
                            }
                        }
                        if !is_number(get(data, "steps_per_sec").expect("checked above")) {
                            return Err(Problem(
                                lineno,
                                "rollout.bench `steps_per_sec` is not numeric".into(),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            "counter" | "gauge" => {
                let Some(name) = get(&value, "name").and_then(as_str) else {
                    return Err(Problem(lineno, format!("{t} record has no `name`")));
                };
                match (t, name) {
                    ("gauge", "desim.pending") => desim_pending += 1,
                    ("counter", "desim.wheel_cascades") => desim_cascades += 1,
                    ("counter", "serve.decisions") => serve_decisions += 1,
                    ("gauge", "serve.latency_p99_us") => serve_p99 += 1,
                    ("counter", "train.worker_steps") => worker_steps += 1,
                    ("counter", "train.worker_restarts") => worker_restarts += 1,
                    ("gauge", "train.weight_version_lag") => version_lag += 1,
                    ("gauge", "train.replay_shard_depth") => shard_depth += 1,
                    ("counter", _) => {
                        if let Some(i) = SERVE_COUNTERS.iter().position(|c| *c == name) {
                            serve_counter_rows[i] += 1;
                        }
                    }
                    _ => {}
                }
                let v = get(&value, "value")
                    .ok_or_else(|| Problem(lineno, format!("{t} record has no `value`")))?;
                if !is_number(v) {
                    return Err(Problem(lineno, format!("{t} `value` is not numeric")));
                }
            }
            "hist" => {
                let buckets = get(&value, "buckets")
                    .ok_or_else(|| Problem(lineno, "hist record has no `buckets`".into()))?;
                match buckets {
                    Value::Array(entries) if !entries.is_empty() => {
                        let last = entries.last().expect("non-empty");
                        if get(last, "le") != Some(&Value::Null) {
                            return Err(Problem(
                                lineno,
                                "hist buckets do not end with the +Inf (`le: null`) bucket".into(),
                            ));
                        }
                    }
                    _ => {
                        return Err(Problem(
                            lineno,
                            "hist `buckets` is not a non-empty array".into(),
                        ))
                    }
                }
            }
            other => return Err(Problem(lineno, format!("unknown record type `{other}`"))),
        }
    }
    if require_distributed {
        for (rows, what) in [
            (worker_steps, "`train.worker_steps` counter"),
            (version_lag, "`train.weight_version_lag` gauge"),
            (shard_depth, "`train.replay_shard_depth` gauge"),
            (dist_waves, "`distributed.wave` event"),
            (
                worker_restarts,
                "`train.worker_restarts` counter (the learner must materialise it even at zero)",
            ),
        ] {
            if rows == 0 {
                return Err(Problem(0, format!("stream contains no {what}")));
            }
        }
    } else if require_rollout {
        if rollouts == 0 {
            return Err(Problem(
                0,
                "stream contains no `rollout.bench` events".into(),
            ));
        }
    } else if require_serve {
        if serve_decisions == 0 {
            return Err(Problem(
                0,
                "stream contains no `serve.decisions` counters".into(),
            ));
        }
        if serve_p99 == 0 {
            return Err(Problem(
                0,
                "stream contains no `serve.latency_p99_us` gauge".into(),
            ));
        }
        for (name, rows) in SERVE_COUNTERS.iter().zip(serve_counter_rows) {
            if rows == 0 {
                return Err(Problem(
                    0,
                    format!(
                        "stream contains no `{name}` counter (the hardened serving \
                         loop must materialise it even at zero)"
                    ),
                ));
            }
        }
    } else if windows == 0 {
        return Err(Problem(0, "stream contains no `window` events".into()));
    }
    if require_training && iterations == 0 {
        return Err(Problem(0, "stream contains no `iteration` events".into()));
    }
    if require_workload && workload_rates == 0 {
        return Err(Problem(
            0,
            "stream contains no `workload.target_rate` events (the environment \
             emits one per decision window)"
                .into(),
        ));
    }
    // Any run with decision windows drove the cluster's event engine, whose
    // per-window checkpoint must report queue depth and wheel-cascade
    // counts (zero-delta counters are still emitted).
    if windows > 0 && desim_pending == 0 {
        return Err(Problem(
            0,
            "stream has `window` events but no `desim.pending` gauge".into(),
        ));
    }
    if windows > 0 && desim_cascades == 0 {
        return Err(Problem(
            0,
            "stream has `window` events but no `desim.wheel_cascades` counter".into(),
        ));
    }
    Ok(format!(
        "{events} events ({windows} window, {iterations} iteration, {summaries} summary, \
         {rollouts} rollout records, {dist_waves} distributed waves, \
         {serve_decisions} serve-decision counters, {workload_rates} workload rates)"
    ))
}

fn main() -> ExitCode {
    let mut path = None;
    let mut require_training = false;
    let mut require_rollout = false;
    let mut require_serve = false;
    let mut require_distributed = false;
    let mut require_workload = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-training" => require_training = true,
            "--require-rollout" => require_rollout = true,
            "--require-serve" => require_serve = true,
            "--require-distributed" => require_distributed = true,
            "--require-workload" => require_workload = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!(
                    "unexpected argument {other}; usage: \
                     telemetry_check FILE [--require-training] [--require-rollout] \
                     [--require-serve] [--require-distributed] [--require-workload]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: telemetry_check FILE [--require-training] [--require-rollout] \
             [--require-serve] [--require-distributed] [--require-workload]"
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(
        &text,
        require_training,
        require_rollout,
        require_serve,
        require_distributed,
        require_workload,
    ) {
        Ok(report) => {
            println!("telemetry_check: {path} OK — {report}");
            ExitCode::SUCCESS
        }
        Err(Problem(lineno, message)) => {
            if lineno > 0 {
                eprintln!("telemetry_check: {path}:{lineno}: {message}");
            } else {
                eprintln!("telemetry_check: {path}: {message}");
            }
            ExitCode::FAILURE
        }
    }
}
