//! Ablation A4: sample efficiency — model-based vs model-free (paper §I,
//! §VI-D).
//!
//! MIRAS's core claim: by training the policy against a learnt environment
//! model, it needs far fewer *real* interactions than model-free DDPG.
//! This ablation trains both at a range of real-interaction budgets and
//! evaluates each resulting greedy policy on the real environment.
//!
//! Expected shape: MIRAS's return climbs steeply with few interactions;
//! model-free DDPG needs several times the budget to approach it ("with
//! limited interactions with the real environment it doesn't converge to a
//! good policy, showing its poor sample efficiency").
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_sample_efficiency`

use baselines::train_model_free;
use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::{BenchArgs, EnsembleKind};
use miras_core::{ClusterEnvAdapter, MirasTrainer};
use rl::Environment;

fn fresh_env(kind: EnsembleKind, seed: u64) -> ClusterEnvAdapter {
    let ensemble = kind.ensemble();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
}

/// Greedy-policy return over `steps` real windows, given an action function.
/// Evaluation includes a deployment-like burst (the paper's smallest §VI-D
/// scenario) so that policies are scored on the regime they will face.
fn evaluate(
    kind: EnsembleKind,
    env: &mut ClusterEnvAdapter,
    steps: usize,
    steady: bool,
    mut act: impl FnMut(&[f64]) -> Vec<f64>,
) -> (f64, usize) {
    let mut s = env.reset();
    if !steady {
        env.env_mut().inject_burst(&kind.burst_scenarios()[0]);
    }
    let mut total = 0.0;
    let mut completions = 0usize;
    for _ in 0..steps {
        let a = act(&s);
        let t = env.step(&a);
        total += t.reward;
        s = t.next_state;
        if let Some(m) = env.last_metrics() {
            completions += m.completions.iter().sum::<usize>();
        }
    }
    let _ = env.take_transitions();
    (total, completions)
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_sample_efficiency");
    println!(
        "Ablation A4 — sample efficiency (seed {}, {} evaluation)\n",
        args.seed,
        if args.steady { "steady-state" } else { "burst" }
    );
    for kind in args.ensembles() {
        let config = kind.miras_config(args.seed, args.paper);
        let per_iter = config.real_steps_per_iter + config.eval_steps;
        let eval_steps = kind.comparison_steps();
        println!(
            "##### {} — eval return (higher is better) vs real-interaction budget #####",
            kind.name().to_uppercase()
        );
        println!(
            "{:>13} {:>12} {:>12} {:>14} {:>14}",
            "interactions", "miras_ret", "miras_done", "modelfree_ret", "modelfree_done"
        );
        for iters in [1usize, 3, 6, 12] {
            let budget = iters * per_iter;

            // MIRAS at this budget.
            let mut env = fresh_env(kind, args.seed);
            env.set_telemetry(telemetry.clone());
            let mut trainer = MirasTrainer::new(&env, config.clone());
            trainer.set_telemetry(telemetry.clone());
            for _ in 0..iters {
                let _ = trainer.run_iteration(&mut env);
            }
            let agent = trainer.agent();
            let mut eval_env = fresh_env(kind, args.seed.wrapping_add(99));
            let (miras_return, miras_done) =
                evaluate(kind, &mut eval_env, eval_steps, args.steady, |s| {
                    agent.distribution(s)
                });

            // Model-free DDPG at the same budget.
            let mut mf_env = fresh_env(kind, args.seed.wrapping_add(7));
            let mf = train_model_free(
                &mut mf_env,
                budget,
                config.reset_every,
                config.ddpg.clone(),
                config.collect_burst_max.as_deref(),
            );
            let mut eval_env2 = fresh_env(kind, args.seed.wrapping_add(99));
            let (mf_return, mf_done) =
                evaluate(kind, &mut eval_env2, eval_steps, args.steady, |s| {
                    mf.agent().act(s)
                });

            println!(
                "{budget:>13} {miras_return:>12.0} {miras_done:>12} {mf_return:>14.0} {mf_done:>14}"
            );
        }
        println!();
    }
    telemetry.flush();
}
