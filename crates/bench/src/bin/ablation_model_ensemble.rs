//! Ablation A6 (extension): single environment model vs a deep ensemble.
//!
//! The paper's Fig. 5 shows its single model's iterative (open-loop)
//! predictions drifting through cumulative error. The standard model-based
//! RL remedy — an ensemble of independently initialised models whose mean
//! prediction is used (Nagabandi et al., the paper's ref \[25\]) — is
//! implemented in `miras_core::EnsembleDynamics`. This ablation repeats the
//! Fig. 5 protocol with both and compares one-step and open-loop accuracy,
//! plus the ensemble's disagreement signal in and out of distribution.
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_model_ensemble`

use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::BenchArgs;
use miras_core::{
    ClusterEnvAdapter, DynamicsModel, EnsembleDynamics, Transition, TransitionDataset,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rl::policy::project_to_simplex;
use rl::Environment;

fn collect(
    env: &mut ClusterEnvAdapter,
    steps: usize,
    reset_every: usize,
    rng: &mut SmallRng,
) -> Vec<Transition> {
    let j = env.state_dim();
    let _ = env.reset();
    let mut current = vec![1.0 / j as f64; j];
    for step in 0..steps {
        if reset_every > 0 && step > 0 && step % reset_every == 0 {
            let _ = env.reset();
        }
        if step % 4 == 0 {
            let raw: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0..1.0)).collect();
            current = project_to_simplex(&raw);
        }
        let _ = env.step(&current);
    }
    env.take_transitions()
}

/// Mean absolute error of one-step and open-loop predictions over a test
/// trace, for an arbitrary predictor.
fn accuracy(
    test: &[Transition],
    mut predict: impl FnMut(&[f64], &[f64]) -> Vec<f64>,
) -> (f64, f64) {
    let mut one_step = 0.0;
    let mut open_loop = 0.0;
    let mut state = test[0].state.clone();
    let dims = test[0].state.len() as f64;
    for t in test {
        let fixed = predict(&t.state, &t.action);
        one_step += fixed
            .iter()
            .zip(&t.next_state)
            .map(|(p, y)| (p - y).abs())
            .sum::<f64>()
            / dims;
        let rolled = predict(&state, &t.action);
        open_loop += rolled
            .iter()
            .zip(&t.next_state)
            .map(|(p, y)| (p - y).abs())
            .sum::<f64>()
            / dims;
        state = rolled;
    }
    let n = test.len() as f64;
    (one_step / n, open_loop / n)
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_model_ensemble");
    println!(
        "Ablation A6 — single model vs deep ensemble (seed {})\n",
        args.seed
    );
    for kind in args.ensembles() {
        let ensemble = kind.ensemble();
        let j = ensemble.num_task_types();
        let config = kind.miras_config(args.seed, args.paper);
        let mut rng = SmallRng::seed_from_u64(args.seed.wrapping_add(0xE5));

        let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(args.seed);
        let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
        env.set_telemetry(telemetry.clone());
        let mut dataset = TransitionDataset::new(j);
        dataset.extend(collect(&mut env, 2_000, config.reset_every, &mut rng));

        let test_config = EnvConfig::for_ensemble(&ensemble).with_seed(args.seed + 1);
        let mut test_env =
            ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), test_config));
        let test = collect(&mut test_env, 100, 0, &mut rng);

        let mut single = DynamicsModel::new(j, &config);
        let _ = single.train_with_telemetry(
            &dataset,
            config.model_epochs,
            config.model_batch,
            &telemetry,
        );
        let mut ens = EnsembleDynamics::new(j, &config, 5);
        let _ = ens.train(&dataset, config.model_epochs, config.model_batch);

        let (s_one, s_open) = accuracy(&test, |s, a| single.predict(s, a));
        let (e_one, e_open) = accuracy(&test, |s, a| ens.predict_mean(s, a));

        println!(
            "##### {} (2000 train transitions, 100-step open-loop test) #####",
            kind.name().to_uppercase()
        );
        println!(
            "{:>18} {:>14} {:>14}",
            "model", "one-step MAE", "open-loop MAE"
        );
        println!("{:>18} {:>14.2} {:>14.2}", "single (paper)", s_one, s_open);
        println!("{:>18} {:>14.2} {:>14.2}", "ensemble of 5", e_one, e_open);

        // Disagreement as an out-of-distribution detector.
        let typical = &test[test.len() / 2];
        let in_dist = ens.disagreement(&typical.state, &typical.action);
        let far_state: Vec<f64> = typical.state.iter().map(|&v| v * 20.0 + 500.0).collect();
        let out_dist = ens.disagreement(&far_state, &typical.action);
        println!(
            "disagreement: in-distribution {in_dist:.2}, far out-of-distribution {out_dist:.2}\n"
        );
    }
    telemetry.flush();
}
