//! Simulator correctness audit: invariant sweep + analytic differential.
//!
//! Two independent checks of the emulator, exercised from the outside:
//!
//! 1. **Invariant sweep** — runs the resilience benchmark's scenario suite
//!    (healthy plus consumer crashes, correlated node outages, stragglers,
//!    delivery-delay spikes) with runtime auditing enabled
//!    ([`SimConfig::with_audit`]) and reports every recorded
//!    [`microsim::AuditViolation`]. A healthy simulator reports zero across
//!    all scenarios.
//! 2. **Analytic differential** — drives a single-task workflow under
//!    Poisson arrivals (an M/G/c queue; at service CV 1 the Allen–Cunneen
//!    correction is exactly 1) to steady state and compares mean response
//!    time, mean work-in-progress, and throughput against the Erlang-C
//!    predictions in `baselines::queueing`. Tolerances: 10% on times and
//!    populations, 5% on throughput.
//!
//! Usage: `sim_audit [--smoke] [--seed N] [--windows N] [--workload SPEC]`.
//! `--workload` shapes the invariant sweep's background traffic (stationary,
//! diurnal, trending, flash-crowd, or trace:<path>), so the audit covers the
//! non-stationary arrival paths too. Exits non-zero on any violation or
//! out-of-tolerance differential, so CI can gate on it.

use std::process::ExitCode;

use baselines::{by_name, queueing, Observation, PolicyConfig};
use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv, SimConfig, WorkloadSpec};
use miras_bench::{fault_scenarios, init_telemetry};
use workflow::{Dag, Ensemble, TaskTypeDef, TaskTypeId, WorkflowDef};

struct Args {
    seed: u64,
    /// Decision windows per invariant-sweep scenario.
    windows: usize,
    smoke: bool,
    /// Background-traffic shape for the invariant sweep.
    workload: WorkloadSpec,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        windows: 0, // resolved after flags are read
        smoke: false,
        workload: WorkloadSpec::Stationary,
    };
    let mut windows = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--windows" => {
                windows = Some(
                    it.next()
                        .expect("--windows needs a value")
                        .parse()
                        .expect("windows must be an integer"),
                );
            }
            "--workload" => {
                let v = it.next().expect("--workload needs a value");
                args.workload = WorkloadSpec::parse(&v).expect(
                    "workload must be stationary, diurnal, trending, flash-crowd or trace:<path>",
                );
            }
            "--smoke" => args.smoke = true,
            other => panic!(
                "unknown flag {other}; usage: [--smoke] [--seed N] [--windows N] \
                 [--workload stationary|diurnal|trending|flash-crowd|trace:<path>]"
            ),
        }
    }
    args.windows = windows.unwrap_or(if args.smoke { 8 } else { 50 });
    args
}

/// Runs one fault scenario with auditing on; returns the violation count.
fn run_scenario(
    name: &str,
    sim: SimConfig,
    windows: usize,
    workload: &WorkloadSpec,
    telemetry: &telemetry::Telemetry,
) -> usize {
    let ensemble = Ensemble::msd();
    let mut policy =
        by_name("uniform", &PolicyConfig::new(&ensemble)).expect("uniform is registered");
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_sim(sim.with_audit())
        .with_workload(workload.clone());
    let mut env = MicroserviceEnv::new(ensemble, config);
    env.set_telemetry(telemetry.clone());
    let _ = env.reset();
    let _ = env
        .load_workload_trace()
        .expect("workload trace file loads");
    let mut previous = None;
    for window in 0..windows {
        let wip = env.state();
        let decision = policy.decide(&Observation::new(&wip, previous.as_ref(), window));
        let out = env.step(&decision.allocations);
        previous = Some(out.metrics);
    }
    let violations = env.take_audit_violations();
    for v in &violations {
        eprintln!("  [{name}] {v}");
    }
    violations.len()
}

struct DifferentialRow {
    lambda: f64,
    mu: f64,
    c: usize,
    observed_response: f64,
    predicted_response: f64,
    observed_wip: f64,
    predicted_wip: f64,
    observed_throughput: f64,
    violations: usize,
    pass: bool,
}

const RESPONSE_TOLERANCE: f64 = 0.10;
const WIP_TOLERANCE: f64 = 0.10;
const THROUGHPUT_TOLERANCE: f64 = 0.05;

/// Steady-state measurement of a single-task M/G/c system, audited.
///
/// Always runs the full 1000-window measurement (even under `--smoke`): the
/// whole differential costs about a second of wall clock, and shorter
/// horizons leave too much sampling noise for the 10% tolerances — at
/// λ = 0.5, μ = 1, c = 1 the WIP estimator's standard error over 200
/// windows is already ~10% of the predicted mean.
fn run_differential(lambda: f64, mu: f64, c: usize, seed: u64) -> DifferentialRow {
    let (warmup, measure) = (30, 1000);
    let window_secs = 30u64;
    let ensemble = Ensemble::new(
        "mmc",
        vec![TaskTypeDef::new("S", 1.0 / mu, 1.0)],
        vec![WorkflowDef {
            name: "single".into(),
            dag: Dag::chain(vec![TaskTypeId::new(0)]).expect("one-node chain"),
        }],
        c,
        vec![lambda],
    );
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_window(SimTime::from_secs(window_secs))
        .with_sim(
            SimConfig::new(0)
                .with_startup_delay(SimTime::ZERO, SimTime::ZERO)
                .with_audit(),
        )
        .with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    let action = vec![c];
    for _ in 0..warmup {
        let _ = env.step(&action);
    }
    let mut weighted_response = 0.0;
    let mut completions = 0usize;
    let mut wip_sum = 0usize;
    for _ in 0..measure {
        let m = env.step(&action).metrics;
        if let Some(r) = m.overall_mean_response_secs() {
            let done: usize = m.completions.iter().sum();
            weighted_response += r * done as f64;
            completions += done;
        }
        wip_sum += m.total_wip();
    }
    let violations = env.take_audit_violations().len();
    let observed_response = weighted_response / completions.max(1) as f64;
    let observed_wip = wip_sum as f64 / measure as f64;
    let observed_throughput = completions as f64 / (measure as u64 * window_secs) as f64;
    let predicted_response = queueing::mmc_mean_response(lambda, mu, c);
    let predicted_wip = queueing::mmc_mean_in_system(lambda, mu, c);
    let within = |obs: f64, pred: f64, tol: f64| (obs - pred).abs() / pred <= tol;
    let pass = violations == 0
        && within(observed_response, predicted_response, RESPONSE_TOLERANCE)
        && within(observed_wip, predicted_wip, WIP_TOLERANCE)
        && within(observed_throughput, lambda, THROUGHPUT_TOLERANCE);
    DifferentialRow {
        lambda,
        mu,
        c,
        observed_response,
        predicted_response,
        observed_wip,
        predicted_wip,
        observed_throughput,
        violations,
        pass,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let (telemetry, sink) = init_telemetry("sim_audit");
    let mut failures = 0usize;

    println!(
        "=== invariant sweep (MSD, {} windows per scenario, seed {}, workload {}) ===",
        args.windows,
        args.seed,
        args.workload.name()
    );
    println!("{:>12} {:>12}", "scenario", "violations");
    for scenario in fault_scenarios() {
        let sim = scenario.apply(SimConfig::new(args.seed));
        let count = run_scenario(scenario.name, sim, args.windows, &args.workload, &telemetry);
        println!("{:>12} {:>12}", scenario.name, count);
        failures += count;
    }

    println!(
        "\n=== analytic differential (M/M/c steady state, tolerance {:.0}%/{:.0}%/{:.0}%) ===",
        RESPONSE_TOLERANCE * 100.0,
        WIP_TOLERANCE * 100.0,
        THROUGHPUT_TOLERANCE * 100.0
    );
    println!(
        "{:>6} {:>4} {:>3} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "lambda", "mu", "c", "W_obs(s)", "W_pred(s)", "L_obs", "L_pred", "thru", "viol", "pass"
    );
    let loads: [(f64, f64, usize); 3] = [(0.5, 1.0, 1), (2.0, 1.0, 3), (2.5, 1.0, 3)];
    for (i, &(lambda, mu, c)) in loads.iter().enumerate() {
        let row = run_differential(lambda, mu, c, args.seed.wrapping_add(i as u64));
        println!(
            "{:>6.2} {:>4.1} {:>3} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>8.3} {:>8} {:>6}",
            row.lambda,
            row.mu,
            row.c,
            row.observed_response,
            row.predicted_response,
            row.observed_wip,
            row.predicted_wip,
            row.observed_throughput,
            row.violations,
            if row.pass { "ok" } else { "FAIL" }
        );
        if !row.pass {
            failures += 1;
        }
    }

    telemetry.flush();
    drop(sink);
    if failures == 0 {
        println!("\nsim_audit: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsim_audit: {failures} check(s) FAILED");
        ExitCode::FAILURE
    }
}
