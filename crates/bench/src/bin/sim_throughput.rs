//! Simulation-core throughput: binary-heap vs timing-wheel event queue.
//!
//! Sweeps the emulator from the paper's 14-consumer MSD system up to
//! synthetic 1024-consumer, 128-task-type ensembles with near-million-event
//! decision windows, once per event-queue backend. Both backends deliver
//! bit-identical event sequences (see the `queue_equivalence` differential
//! suite), so every heap/wheel pair simulates the exact same trajectory —
//! the comparison isolates queue cost.
//!
//! Two measurements per sweep point:
//!
//! * **`sim`** — end-to-end [`MicroserviceEnv::step`] throughput under a
//!   fixed uniform allocation: events/sec as the cluster sees them, with
//!   all handler work (RNG draws, pool bookkeeping, dependency release)
//!   included. At paper scale the queue holds a handful of events and the
//!   backends tie; at the million-event points the wheel removes the queue
//!   from the critical path and the residual gap is handler-bound.
//! * **`queue-replay`** — the same event *profile* (bulk-scheduled window
//!   arrivals fanning out into near-term completions, volumes taken from
//!   the measured `sim` run) pushed through the bare [`EventQueue`], no
//!   handlers. This isolates what the backend itself costs and is where
//!   the wheel's O(1) scheduling shows directly.
//!
//! Writes `BENCH_sim.json` at the repository root and a telemetry stream
//! to `results/sim_throughput.jsonl`.
//!
//! Usage: `sim_throughput [--seed N] [--smoke]`
//! (`--smoke` shrinks the window counts so the whole sweep runs in seconds).

use std::time::Instant;

use desim::{EventQueue, QueueKind, SimTime};
use microsim::{EnvConfig, MicroserviceEnv, SimConfig};
use miras_bench::init_telemetry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use telemetry::Value;
use workflow::{Dag, Ensemble, TaskTypeDef, TaskTypeId, WorkflowDef};

/// One sweep point: an ensemble scale plus an arrival-rate multiplier.
struct Scenario {
    name: &'static str,
    /// Builds the ensemble (deterministic; no RNG involved).
    build: fn() -> Ensemble,
    /// Multiplier on the ensemble's default arrival rates.
    rate_scale: f64,
    /// Timed decision windows in the full run.
    windows: usize,
    /// Timed decision windows under `--smoke`.
    smoke_windows: usize,
}

const SCENARIOS: &[Scenario] = &[
    // The paper's testbed scale: 4 task types, 14 consumers, a few dozen
    // arrivals per window. Thousands of windows so the measurement is not
    // dominated by cold caches.
    Scenario {
        name: "msd-paper",
        build: Ensemble::msd,
        rate_scale: 1.0,
        windows: 2000,
        smoke_windows: 20,
    },
    Scenario {
        name: "syn-mid-256",
        build: || Ensemble::synthetic(32, 16, 256, 0.05),
        rate_scale: 1.0,
        windows: 16,
        smoke_windows: 2,
    },
    // ~128k arrivals (~640k events) per 30 s window, stable at load 0.5.
    Scenario {
        name: "syn-large-1k",
        build: || Ensemble::synthetic(128, 64, 1024, 0.03),
        rate_scale: 1.0,
        windows: 6,
        smoke_windows: 1,
    },
    // Short tasks, same 1024 consumers: ~1.9M arrivals (~9.6M events) per
    // window, still stable at load 0.5 — the million-event regime the
    // timing wheel exists for.
    Scenario {
        name: "syn-large-1k-fast",
        build: || Ensemble::synthetic(128, 64, 1024, 0.002),
        rate_scale: 1.0,
        windows: 3,
        smoke_windows: 1,
    },
    // Single-task requests (no DAG fan-out): every second event is a
    // window-scheduled arrival sitting deep in the queue, the worst case
    // for a comparison-based heap and the profile of a plain microservice
    // request stream. ~3.8M arrivals (~7.7M events) per window at load 0.5.
    Scenario {
        name: "syn-1k-micro",
        build: micro_ensemble,
        rate_scale: 1.0,
        windows: 2,
        smoke_windows: 1,
    },
];

/// 128 single-task workflow types over 128 task types, 1024 consumers,
/// ~4 ms mean service: each request is one task, so the event stream is
/// half bulk-scheduled arrivals and half near-term completions.
/// Deterministic, mirroring [`Ensemble::synthetic`]'s jitter scheme.
fn micro_ensemble() -> Ensemble {
    let (j_types, budget, mean_service) = (128usize, 1024usize, 0.004f64);
    let task_types: Vec<TaskTypeDef> = (0..j_types)
        .map(|j| {
            let jitter = 0.5 + (j.wrapping_mul(2_654_435_761) % 1024) as f64 / 1024.0;
            TaskTypeDef::new(format!("S{j}"), mean_service * jitter, 0.5)
        })
        .collect();
    let workflows: Vec<WorkflowDef> = (0..j_types)
        .map(|i| WorkflowDef {
            name: format!("R{i}"),
            dag: Dag::chain(vec![TaskTypeId::new(i)]).expect("single-node chain is well-formed"),
        })
        .collect();
    let target_load = 0.5 * budget as f64;
    let rates: Vec<f64> = (0..j_types)
        .map(|i| target_load / (j_types as f64 * task_types[i].mean_service_secs))
        .collect();
    Ensemble::new("SYN-1024-micro", task_types, workflows, budget, rates)
}

#[derive(Debug, Serialize)]
struct PointResult {
    scenario: String,
    mode: String,
    queue: String,
    task_types: usize,
    consumers: usize,
    rate_scale: f64,
    windows: usize,
    events: u64,
    secs: f64,
    events_per_sec: f64,
    requests: u64,
    requests_per_sec: f64,
    peak_pending: usize,
    wheel_cascades: u64,
}

#[derive(Debug, Serialize)]
struct Speedup {
    scenario: String,
    mode: String,
    events_per_sec_wheel_over_heap: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    seed: u64,
    smoke: bool,
    results: Vec<PointResult>,
    speedups: Vec<Speedup>,
}

fn queue_name(kind: QueueKind) -> &'static str {
    match kind {
        QueueKind::Heap => "heap",
        QueueKind::Wheel => "wheel",
    }
}

/// Runs one end-to-end sweep point: builds the environment on `kind`,
/// applies a uniform allocation, and times `windows` decision windows
/// (after one untimed warm-up window so both backends start from a
/// populated steady state). Returns the result plus the measured arrival
/// count, which sizes the queue replay.
fn run_sim(scenario: &Scenario, kind: QueueKind, windows: usize, seed: u64) -> (PointResult, u64) {
    let ensemble = (scenario.build)();
    let budget = ensemble.default_consumer_budget();
    let j = ensemble.num_task_types();
    let rates: Vec<f64> = ensemble
        .default_arrival_rates()
        .iter()
        .map(|r| r * scenario.rate_scale)
        .collect();
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_arrival_rates(rates)
        .with_seed(seed)
        .with_sim(SimConfig::new(seed).with_queue_kind(kind));
    let mut env = MicroserviceEnv::new(ensemble, config);
    // Uniform allocation: the whole budget spread evenly over task types.
    let action = vec![(budget / j).max(1); j];

    env.step(&action); // warm-up: populate queues, spin consumers up
    let events_before = env.cluster().events_processed();
    let mut requests = 0u64;
    let mut arrivals = 0u64;
    let mut peak_pending = env.cluster().pending_events();
    let start = Instant::now();
    for _ in 0..windows {
        let out = env.step(&action);
        requests += out
            .metrics
            .completions
            .iter()
            .map(|&c| c as u64)
            .sum::<u64>();
        arrivals += out.metrics.arrivals.iter().map(|&a| a as u64).sum::<u64>();
        peak_pending = peak_pending.max(env.cluster().pending_events());
    }
    let secs = start.elapsed().as_secs_f64();
    let events = env.cluster().events_processed() - events_before;
    let result = PointResult {
        scenario: scenario.name.to_string(),
        mode: "sim".to_string(),
        queue: queue_name(kind).to_string(),
        task_types: j,
        consumers: budget,
        rate_scale: scenario.rate_scale,
        windows,
        events,
        secs,
        events_per_sec: events as f64 / secs,
        requests,
        requests_per_sec: requests as f64 / secs,
        peak_pending,
        wheel_cascades: env.cluster().wheel_cascades(),
    };
    (result, arrivals)
}

/// Replays the sweep point's event profile through the bare queue: per
/// window, bulk-push `arrivals` events uniform over the 30 s window (the
/// environment schedules a whole window's Poisson arrivals up front), then
/// drain the window; each popped arrival pushes `children` near-term
/// follow-ups at chain-like service offsets, mirroring how one workflow
/// request fans out into task-completion events. No handler work — this
/// measures the queue alone, on the same depth profile the simulation
/// produces.
fn run_replay(
    scenario: &Scenario,
    kind: QueueKind,
    arrivals_per_window: u64,
    children: u64,
    service_secs: f64,
    windows: usize,
    seed: u64,
) -> PointResult {
    let ensemble = (scenario.build)();
    let (j, budget) = (
        ensemble.num_task_types(),
        ensemble.default_consumer_budget(),
    );
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = SmallRng::seed_from_u64(seed);
    let window_secs = 30.0f64;
    let mut pops = 0u64;
    let mut arrival_pops = 0u64;
    let mut peak_pending = 0usize;
    let mut drain = |q: &mut EventQueue<u64>, horizon: Option<SimTime>| {
        while let Some(t) = q.peek_time() {
            if horizon.is_some_and(|h| t >= h) {
                break;
            }
            let ev = q.pop().expect("peeked non-empty");
            pops += 1;
            if ev.event < arrivals_per_window {
                arrival_pops += 1;
                for c in 0..children {
                    // Chain-like fan-out: successor task c completes about
                    // (c+1) service times after the request arrives.
                    let at = ev.time + SimTime::from_secs_f64(service_secs * (c + 1) as f64);
                    q.push(at, arrivals_per_window + c);
                }
            }
        }
    };
    let start = Instant::now();
    for w in 0..windows {
        let base = w as f64 * window_secs;
        for i in 0..arrivals_per_window {
            let at = SimTime::from_secs_f64(base + rng.gen_range(0.0..window_secs));
            q.push(at, i);
        }
        peak_pending = peak_pending.max(q.len());
        drain(&mut q, Some(SimTime::from_secs_f64(base + window_secs)));
    }
    drain(&mut q, None);
    let secs = start.elapsed().as_secs_f64();
    PointResult {
        scenario: scenario.name.to_string(),
        mode: "queue-replay".to_string(),
        queue: queue_name(kind).to_string(),
        task_types: j,
        consumers: budget,
        rate_scale: scenario.rate_scale,
        windows,
        events: pops,
        secs,
        events_per_sec: pops as f64 / secs,
        requests: arrival_pops,
        requests_per_sec: arrival_pops as f64 / secs,
        peak_pending,
        wheel_cascades: q.cascades(),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; usage: [--seed N] [--smoke]"),
        }
    }

    let (telemetry, sink) = init_telemetry("sim_throughput");
    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for scenario in SCENARIOS {
        let windows = if smoke {
            scenario.smoke_windows
        } else {
            scenario.windows
        };
        let mut sim_pair = [0.0f64; 2];
        let mut arrivals_total = 0u64;
        let mut events_total = 0u64;
        for (i, kind) in [QueueKind::Heap, QueueKind::Wheel].into_iter().enumerate() {
            let (r, arrivals) = run_sim(scenario, kind, windows, seed);
            eprintln!(
                "[sim] {:>17} {:>12} {:>5}: {:>11.0} events/s  {:>9.0} req/s  \
                 peak {:>8} pending  {} cascades",
                r.scenario,
                r.mode,
                r.queue,
                r.events_per_sec,
                r.requests_per_sec,
                r.peak_pending,
                r.wheel_cascades
            );
            sim_pair[i] = r.events_per_sec;
            arrivals_total = arrivals;
            events_total = r.events;
            results.push(r);
        }
        speedups.push(Speedup {
            scenario: scenario.name.to_string(),
            mode: "sim".to_string(),
            events_per_sec_wheel_over_heap: sim_pair[1] / sim_pair[0],
        });

        // Size the replay from the measured run: same arrivals per window,
        // same events-per-arrival fan-out. Smoke runs cap the volume (and
        // therefore the depth) so CI stays fast; checked-in numbers come
        // from the full run.
        let mut arrivals_per_window = (arrivals_total / windows as u64).max(1);
        if smoke {
            arrivals_per_window = arrivals_per_window.min(500_000);
        }
        let children = events_total
            .checked_div(arrivals_total)
            .map_or(1, |per| per.saturating_sub(1).max(1));
        let mean_service: f64 = {
            let ensemble = (scenario.build)();
            let types = ensemble.task_types();
            types.iter().map(|t| t.mean_service_secs).sum::<f64>() / types.len() as f64
        };
        // Enough replay windows for a stable timing, bounded for smoke.
        let target_events: u64 = if smoke { 200_000 } else { 4_000_000 };
        let per_window = arrivals_per_window * (children + 1);
        let replay_windows = (target_events / per_window.max(1)).clamp(2, 2000) as usize;
        let mut replay_pair = [0.0f64; 2];
        for (i, kind) in [QueueKind::Heap, QueueKind::Wheel].into_iter().enumerate() {
            let r = run_replay(
                scenario,
                kind,
                arrivals_per_window,
                children,
                mean_service,
                replay_windows,
                seed,
            );
            eprintln!(
                "[sim] {:>17} {:>12} {:>5}: {:>11.0} events/s  peak {:>8} pending  {} cascades",
                r.scenario, r.mode, r.queue, r.events_per_sec, r.peak_pending, r.wheel_cascades
            );
            replay_pair[i] = r.events_per_sec;
            results.push(r);
        }
        speedups.push(Speedup {
            scenario: scenario.name.to_string(),
            mode: "queue-replay".to_string(),
            events_per_sec_wheel_over_heap: replay_pair[1] / replay_pair[0],
        });
    }

    println!("\nsim throughput, wheel vs heap (events/sec ratio):");
    for s in &speedups {
        println!(
            "  {:>17} {:>12}: {:.2}x",
            s.scenario, s.mode, s.events_per_sec_wheel_over_heap
        );
    }

    for r in &results {
        telemetry.event(
            "sim.bench",
            &[
                ("scenario", Value::String(r.scenario.clone())),
                ("mode", Value::String(r.mode.clone())),
                ("queue", Value::String(r.queue.clone())),
                ("events", Value::UInt(r.events)),
                ("events_per_sec", Value::Float(r.events_per_sec)),
                ("requests_per_sec", Value::Float(r.requests_per_sec)),
                ("peak_pending", Value::UInt(r.peak_pending as u64)),
                ("wheel_cascades", Value::UInt(r.wheel_cascades)),
            ],
        );
    }

    let report = BenchReport {
        bench: "sim_throughput".to_string(),
        seed,
        smoke,
        results,
        speedups,
    };
    match serde_json::to_string(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_sim.json", json + "\n") {
                eprintln!("[sim] could not write BENCH_sim.json: {e}");
            } else {
                eprintln!("[sim] wrote BENCH_sim.json");
            }
        }
        Err(e) => eprintln!("[sim] could not serialise report: {e}"),
    }
    telemetry.flush();
    drop(sink);
}
