//! Figure 8: LIGO response-time comparison under bursts.
//!
//! Reproduces §VI-D for the LIGO ensemble: MIRAS vs `stream` (DRS), `heft`,
//! `monad`, and `rl` under bursts (100, 100, 50, 30), (150, 150, 80, 50),
//! and (80, 80, 80, 80) requests of DataFind/CAT/Full/Injection, with
//! C = 30 consumers.
//!
//! Expected shape (paper): MIRAS wins under the small burst; under the
//! larger bursts its response time rises temporarily (the policy deliberately
//! defers Coire work) and then recovers below the baselines — long-term
//! return beats short-term greed.
//!
//! Run: `cargo run -p miras-bench --release --bin fig8_ligo_comparison`

use miras_bench::{run_comparison, BenchArgs, EnsembleKind};

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("fig8_ligo_comparison");
    println!(
        "Fig. 8 reproduction — LIGO comparison (seed {}, {} scale)",
        args.seed,
        if args.paper { "paper" } else { "fast" }
    );
    let _ = run_comparison(EnsembleKind::Ligo, &args, &telemetry);
    telemetry.flush();
}
