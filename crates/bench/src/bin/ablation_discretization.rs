//! Ablation A5: action discretisation — the paper's floor rule vs largest
//! remainder.
//!
//! The paper converts the actor's softmax distribution into consumer counts
//! with `m_j = ⌊C · a_j⌋` (§IV-D). Flooring discards up to `J − 1` of the
//! `C` consumers; with C = 14 and J = 4 that is up to 21% of total capacity
//! every window, and with an entropy-regularised actor (DESIGN.md §4b) the
//! waste is systematic rather than occasional. This ablation replays the
//! same trained policy through both discretisations and measures the
//! capacity actually used and the work completed.
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_discretization`

use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::{train_miras, BenchArgs, EnsembleKind};
use miras_core::MirasAgent;
use rl::policy::{allocation_floor, allocation_largest_remainder};

fn replay(kind: EnsembleKind, agent: &MirasAgent, seed: u64, floor: bool) -> (f64, usize, usize) {
    let ensemble = kind.ensemble();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_burst(&kind.burst_scenarios()[0]);
    let budget = agent.consumer_budget();
    let mut used = 0usize;
    let mut completions = 0usize;
    let mut reward = 0.0;
    let steps = kind.comparison_steps();
    for _ in 0..steps {
        let dist = agent.distribution(&env.state());
        let m = if floor {
            allocation_floor(&dist, budget)
        } else {
            allocation_largest_remainder(&dist, budget)
        };
        used += m.iter().sum::<usize>();
        let out = env.step(&m);
        completions += out.metrics.completions.iter().sum::<usize>();
        reward += out.reward;
    }
    (reward, completions, used / steps)
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_discretization");
    println!(
        "Ablation A5 — floor vs largest-remainder discretisation (seed {})\n",
        args.seed
    );
    for kind in args.ensembles() {
        let (_, agent) = train_miras(kind, &args, !args.no_cache, true, &telemetry);
        println!(
            "##### {} — burst {:?}, same trained policy #####",
            kind.name().to_uppercase(),
            kind.burst_scenarios()[0].counts()
        );
        println!(
            "{:>20} {:>14} {:>13} {:>18}",
            "rule", "total_reward", "completions", "mean_consumers_used"
        );
        for (label, floor) in [("floor (paper)", true), ("largest remainder", false)] {
            let (reward, completions, used) = replay(kind, &agent, args.seed, floor);
            println!("{label:>20} {reward:>14.1} {completions:>13} {used:>18}");
        }
        println!(
            "(budget C = {}; flooring leaves consumers idle every window)\n",
            kind.ensemble().default_consumer_budget()
        );
    }
    telemetry.flush();
}
