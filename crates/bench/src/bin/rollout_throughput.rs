//! Rollout-engine throughput: sequential vs batched lockstep.
//!
//! Measures synthetic-environment steps per second for the inner policy
//! loop's hot path — exploratory action, model step, replay observe — in
//! the original sequential mode and in lockstep mode at several lane
//! counts. Writes `BENCH_rollout.json` at the repository root (next to
//! `BENCH_nn.json`) and a telemetry stream to
//! `results/rollout_throughput.jsonl`.
//!
//! Usage: `rollout_throughput [--seed N] [--smoke] [--steps N]`
//! (`--steps` is the per-mode environment-step budget).

use std::time::Instant;

use miras_bench::{drain_dataset, init_telemetry, time_sequential_rollouts};
use miras_core::{
    BatchedSyntheticEnv, DynamicsModel, MirasConfig, RefinedModel, TransitionDataset,
};
use rl::Ddpg;
use serde::Serialize;
use telemetry::Value;

/// Lane counts exercised by the lockstep sweep.
const LANE_SWEEP: [usize; 4] = [1, 4, 16, 64];

#[derive(Debug, Serialize)]
struct ModeResult {
    mode: String,
    lanes: usize,
    env_steps: usize,
    secs: f64,
    steps_per_sec: f64,
    /// This row's throughput over the sequential baseline's (1.0 for the
    /// baseline itself); filled in after the sweep completes.
    speedup_vs_sequential: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    config: String,
    state_dim: usize,
    rollout_len: usize,
    nn_threads: usize,
    results: Vec<ModeResult>,
    speedup_lockstep16_vs_sequential: f64,
}

/// Times the sequential rollout path via the shared
/// [`time_sequential_rollouts`] harness.
fn run_sequential(
    refined: &RefinedModel,
    data: &TransitionDataset,
    budget: usize,
    agent: &mut Ddpg,
    rollout_len: usize,
    env_steps: usize,
    telemetry: &telemetry::Telemetry,
) -> ModeResult {
    let (steps, secs) = time_sequential_rollouts(
        refined,
        data,
        budget,
        agent,
        rollout_len,
        env_steps,
        telemetry,
    );
    ModeResult {
        mode: "sequential".to_string(),
        lanes: 1,
        env_steps: steps,
        secs,
        steps_per_sec: steps as f64 / secs,
        speedup_vs_sequential: 1.0,
    }
}

/// Times the lockstep rollout path at `lanes` lanes:
/// `act_exploratory_batch` → `BatchedSyntheticEnv::step` → `observe_batch`.
fn run_lockstep(
    refined: &RefinedModel,
    data: &TransitionDataset,
    budget: usize,
    agent: &mut Ddpg,
    lanes: usize,
    rollout_len: usize,
    env_steps: usize,
    telemetry: &telemetry::Telemetry,
) -> ModeResult {
    let mut env = BatchedSyntheticEnv::new(refined.clone(), data.clone(), budget, 99, lanes);
    env.set_telemetry(telemetry.clone());
    let waves = (env_steps / (lanes * rollout_len)).max(1);
    let mut prev = nn::Matrix::zeros(0, 0);
    let mut step_wave = |env: &mut BatchedSyntheticEnv, agent: &mut Ddpg| {
        env.reset(lanes);
        agent.resample_perturbation();
        for _ in 0..rollout_len {
            prev.resize(env.states().rows(), env.states().cols());
            prev.as_mut_slice().copy_from_slice(env.states().as_slice());
            let actions = agent.act_exploratory_batch(&prev);
            env.step(&actions);
            agent.observe_batch(&prev, &actions, env.rewards(), env.states());
        }
    };
    step_wave(&mut env, agent); // warm-up
    let start = Instant::now();
    for _ in 0..waves {
        step_wave(&mut env, agent);
    }
    let secs = start.elapsed().as_secs_f64();
    let steps = waves * lanes * rollout_len;
    ModeResult {
        mode: "lockstep".to_string(),
        lanes,
        env_steps: steps,
        secs,
        steps_per_sec: steps as f64 / secs,
        speedup_vs_sequential: 0.0, // filled in once the baseline is known
    }
}

/// Writes `BENCH_rollout.json`, carrying over the `distributed` rows that
/// `train_throughput` may have merged into an earlier report — the two
/// benches share the file, and either should be re-runnable without
/// clobbering the other's section.
fn write_report(report: &BenchReport) {
    use serde::value::Value as Json;
    let path = "BENCH_rollout.json";
    let mut fields = match serde::value::to_value(report) {
        Ok(Json::Object(fields)) => fields,
        Ok(_) => unreachable!("a struct serialises to an object"),
        Err(e) => {
            eprintln!("[rollout] could not serialise report: {e}");
            return;
        }
    };
    if let Some(Json::Object(old)) = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Json>(&text).ok())
    {
        for (k, v) in old {
            if k == "distributed" || k == "speedup_workers4_vs_workers1" {
                fields.push((k, v));
            }
        }
    }
    match serde_json::to_string(&Json::Object(fields)) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("[rollout] could not write {path}: {e}");
            } else {
                eprintln!("[rollout] wrote {path}");
            }
        }
        Err(e) => eprintln!("[rollout] could not serialise report: {e}"),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut smoke = false;
    let mut steps_override: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--steps" => {
                steps_override = Some(
                    it.next()
                        .expect("--steps needs a value")
                        .parse()
                        .expect("steps must be an integer"),
                );
            }
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; usage: [--seed N] [--smoke] [--steps N]"),
        }
    }

    let (telemetry, sink) = init_telemetry("rollout_throughput");
    let config = MirasConfig::msd_fast(seed);
    let j = 4usize;
    let budget = 14usize;
    let rollout_len = config.rollout_len;
    let env_steps = steps_override.unwrap_or(if smoke { 3_200 } else { 32_000 });

    eprintln!("[rollout] training environment model ({j}-dim drain dynamics)");
    let data = drain_dataset(j, seed);
    let mut model = DynamicsModel::new(j, &config);
    let loss = model.train(&data, 10, config.model_batch);
    eprintln!("[rollout] model loss {loss:.5}; timing {env_steps} env steps per mode");
    let refined = RefinedModel::fit(model, &data, config.refine_percentile);

    let mut results = Vec::new();
    {
        let mut agent = Ddpg::new(j, j, config.ddpg.clone());
        let r = run_sequential(
            &refined,
            &data,
            budget,
            &mut agent,
            rollout_len,
            env_steps,
            &telemetry,
        );
        eprintln!(
            "[rollout] {:>10} lanes={:<3} {:>9.0} steps/s",
            r.mode, r.lanes, r.steps_per_sec
        );
        results.push(r);
    }
    for lanes in LANE_SWEEP {
        let mut agent = Ddpg::new(j, j, config.ddpg.clone());
        let r = run_lockstep(
            &refined,
            &data,
            budget,
            &mut agent,
            lanes,
            rollout_len,
            env_steps,
            &telemetry,
        );
        eprintln!(
            "[rollout] {:>10} lanes={:<3} {:>9.0} steps/s",
            r.mode, r.lanes, r.steps_per_sec
        );
        results.push(r);
    }

    let sequential_sps = results[0].steps_per_sec;
    for r in &mut results {
        r.speedup_vs_sequential = r.steps_per_sec / sequential_sps;
    }
    let lockstep16_sps = results
        .iter()
        .find(|r| r.mode == "lockstep" && r.lanes == 16)
        .map_or(0.0, |r| r.steps_per_sec);
    let speedup = lockstep16_sps / sequential_sps;
    println!("\nrollout throughput (steps/sec), {env_steps} env steps per mode:");
    for r in &results {
        println!(
            "  {:>10} lanes={:<3} {:>10.0} steps/s  ({:>5.2}x vs sequential)",
            r.mode, r.lanes, r.steps_per_sec, r.speedup_vs_sequential
        );
    }
    println!("  lockstep(16) vs sequential: {speedup:.2}x");

    for r in &results {
        telemetry.event(
            "rollout.bench",
            &[
                ("mode", Value::String(r.mode.clone())),
                ("lanes", Value::UInt(r.lanes as u64)),
                ("env_steps", Value::UInt(r.env_steps as u64)),
                ("steps_per_sec", Value::Float(r.steps_per_sec)),
                (
                    "speedup_vs_sequential",
                    Value::Float(r.speedup_vs_sequential),
                ),
            ],
        );
    }

    let report = BenchReport {
        bench: "rollout_throughput".to_string(),
        config: "msd_fast".to_string(),
        state_dim: j,
        rollout_len,
        nn_threads: nn::threads::configured_threads(),
        results,
        speedup_lockstep16_vs_sequential: speedup,
    };
    write_report(&report);
    telemetry.flush();
    drop(sink);
}
