//! Figure 5: predictive-model accuracy.
//!
//! Reproduces the paper's §VI-B protocol: collect transitions from the real
//! (emulated) system under random actions that change every 4 steps, train
//! the environment model on everything but a held-out contiguous trace of
//! 100 points, then compare against ground truth:
//!
//! * **fixed-input** one-step predictions (state and action from the real
//!   trace), and
//! * **iterative** open-loop predictions (only the initial state is real;
//!   subsequent states come from the model's own outputs, actions replayed
//!   from the trace),
//!
//! for the immediate reward and the first WIP dimension, on both MSD and
//! LIGO. Paper scale collects 14,000 (MSD) / 37,000 (LIGO) transitions;
//! the default fast scale collects 2,000 / 3,000.
//!
//! Run: `cargo run -p miras-bench --release --bin fig5_model_accuracy`
//! (add `--paper` for full scale, `--ensemble msd|ligo` to restrict).

use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::{BenchArgs, EnsembleKind};
use miras_core::{ClusterEnvAdapter, DynamicsModel, Transition, TransitionDataset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rl::policy::project_to_simplex;
use rl::Environment;

/// Collects `steps` transitions under random actions varied every 4 steps,
/// resetting the environment every `reset_every` steps (unless 0).
fn collect_random_trace(
    env: &mut ClusterEnvAdapter,
    steps: usize,
    reset_every: usize,
    rng: &mut SmallRng,
) -> Vec<Transition> {
    let j = env.state_dim();
    let _ = env.reset();
    let mut current = vec![1.0 / j as f64; j];
    for step in 0..steps {
        if reset_every > 0 && step > 0 && step % reset_every == 0 {
            let _ = env.reset();
        }
        if step % 4 == 0 {
            let raw: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0..1.0)).collect();
            current = project_to_simplex(&raw);
        }
        let _ = env.step(&current);
    }
    env.take_transitions()
}

fn mean_abs_error(truth: &[f64], pred: &[f64]) -> f64 {
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

fn run_for(kind: EnsembleKind, args: &BenchArgs, telemetry: &telemetry::Telemetry) {
    let seed = args.seed;
    let (collect_steps, test_steps) = if args.smoke {
        (300, 30)
    } else {
        match (kind, args.paper) {
            (EnsembleKind::Msd, true) => (14_000, 100),
            (EnsembleKind::Ligo, true) => (37_000, 100),
            (EnsembleKind::Msd, false) => (2_000, 100),
            (EnsembleKind::Ligo, false) => (3_000, 100),
            // MSD-sized state space; use the MSD budgets.
            (EnsembleKind::GpuServe, true) => (14_000, 100),
            (EnsembleKind::GpuServe, false) => (2_000, 100),
        }
    };
    let config = args.miras_config(kind);
    let ensemble = kind.ensemble();
    let j = ensemble.num_task_types();

    println!(
        "\n##### Fig. 5 — {} (collect {} transitions, test {}) #####",
        kind.name().to_uppercase(),
        collect_steps,
        test_steps
    );

    // Training data: random actions with periodic resets (§VI-A3).
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    env.set_telemetry(telemetry.clone());
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0xF15));
    let mut dataset = TransitionDataset::new(j);
    dataset.extend(collect_random_trace(
        &mut env,
        collect_steps,
        config.reset_every,
        &mut rng,
    ));

    // Held-out test trace: contiguous (no resets) so the iterative rollout
    // is well defined. A different seed keeps it disjoint from training.
    let test_env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed.wrapping_add(1));
    let mut test_env =
        ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), test_env_config));
    let test_trace = collect_random_trace(&mut test_env, test_steps, 0, &mut rng);

    // Train the environment model (paper-faithful architecture per §VI-A3).
    let mut model = DynamicsModel::new(j, &config);
    let final_loss =
        model.train_with_telemetry(&dataset, config.model_epochs, config.model_batch, telemetry);
    println!("model trained: final epoch MSE (standardised) = {final_loss:.4}");

    // Fixed-input one-step predictions.
    let mut truth_reward = Vec::new();
    let mut fixed_reward = Vec::new();
    let mut truth_w0 = Vec::new();
    let mut fixed_w0 = Vec::new();
    for t in &test_trace {
        let pred = model.predict(&t.state, &t.action);
        truth_reward.push(microsim::reward_from_total_wip(
            t.next_state.iter().sum::<f64>(),
        ));
        fixed_reward.push(microsim::reward_from_total_wip(pred.iter().sum::<f64>()));
        truth_w0.push(t.next_state[0]);
        fixed_w0.push(pred[0]);
    }

    // Iterative open-loop rollout: real initial state, replayed actions.
    let mut iter_reward = Vec::new();
    let mut iter_w0 = Vec::new();
    let mut state = test_trace[0].state.clone();
    for t in &test_trace {
        let pred = model.predict(&state, &t.action);
        iter_reward.push(microsim::reward_from_total_wip(pred.iter().sum::<f64>()));
        iter_w0.push(pred[0]);
        state = pred;
    }

    println!(
        "\n{:>5} {:>13} {:>13} {:>13} {:>10} {:>10} {:>10}",
        "step", "truth_reward", "fixed_reward", "iter_reward", "truth_w0", "fixed_w0", "iter_w0"
    );
    for i in 0..test_trace.len() {
        println!(
            "{:>5} {:>13.1} {:>13.1} {:>13.1} {:>10.1} {:>10.1} {:>10.1}",
            i,
            truth_reward[i],
            fixed_reward[i],
            iter_reward[i],
            truth_w0[i],
            fixed_w0[i],
            iter_w0[i]
        );
    }

    println!("\nsummary ({}):", kind.name());
    println!(
        "  reward   fixed-input: MAE={:>8.2}  corr={:.3}",
        mean_abs_error(&truth_reward, &fixed_reward),
        correlation(&truth_reward, &fixed_reward)
    );
    println!(
        "  reward   iterative  : MAE={:>8.2}  corr={:.3}",
        mean_abs_error(&truth_reward, &iter_reward),
        correlation(&truth_reward, &iter_reward)
    );
    println!(
        "  w0       fixed-input: MAE={:>8.2}  corr={:.3}",
        mean_abs_error(&truth_w0, &fixed_w0),
        correlation(&truth_w0, &fixed_w0)
    );
    println!(
        "  w0       iterative  : MAE={:>8.2}  corr={:.3}",
        mean_abs_error(&truth_w0, &iter_w0),
        correlation(&truth_w0, &iter_w0)
    );
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("fig5_model_accuracy");
    println!(
        "Fig. 5 reproduction — predictive model accuracy (seed {})",
        args.seed
    );
    for kind in args.ensembles() {
        run_for(kind, &args, &telemetry);
    }
    telemetry.flush();
}
