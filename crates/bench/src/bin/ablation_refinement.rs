//! Ablation A2: Lend–Giveback model refinement (paper §IV-C2).
//!
//! Two measurements:
//!
//! 1. **Model level** — one-step prediction error of the raw vs refined
//!    model, split by whether the source state touches the WIP ≈ 0 boundary
//!    (any dimension below its τ_j threshold). The paper's claim: near the
//!    boundary the raw model is dominated by system randomness; Lend–
//!    Giveback evaluates it in the well-sampled region instead.
//! 2. **Policy level** — final evaluation return of MIRAS trained with and
//!    without refinement, all else equal.
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_refinement`

use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::{BenchArgs, EnsembleKind};
use miras_core::{ClusterEnvAdapter, DynamicsModel, MirasTrainer, RefinedModel, TransitionDataset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rl::policy::project_to_simplex;
use rl::Environment;

fn collect(
    env: &mut ClusterEnvAdapter,
    steps: usize,
    reset_every: usize,
    rng: &mut SmallRng,
) -> Vec<miras_core::Transition> {
    let j = env.state_dim();
    let _ = env.reset();
    let mut current = vec![1.0 / j as f64; j];
    for step in 0..steps {
        if reset_every > 0 && step > 0 && step % reset_every == 0 {
            let _ = env.reset();
        }
        if step % 4 == 0 {
            let raw: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0..1.0)).collect();
            current = project_to_simplex(&raw);
        }
        let _ = env.step(&current);
    }
    env.take_transitions()
}

fn model_level(kind: EnsembleKind, seed: u64) {
    let ensemble = kind.ensemble();
    let j = ensemble.num_task_types();
    let config = kind.miras_config(seed, false);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0xAB1));

    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut dataset = TransitionDataset::new(j);
    dataset.extend(collect(&mut env, 1500, config.reset_every, &mut rng));

    let test_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed + 1);
    let mut test_env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), test_config));
    let test = collect(&mut test_env, 400, config.reset_every, &mut rng);

    let mut model = DynamicsModel::new(j, &config);
    let _ = model.train(&dataset, config.model_epochs, config.model_batch);
    let refined = RefinedModel::fit(model.clone(), &dataset, config.refine_percentile);

    let mut raw_boundary = (0.0, 0usize);
    let mut ref_boundary = (0.0, 0usize);
    let mut raw_interior = (0.0, 0usize);
    let mut ref_interior = (0.0, 0usize);
    for t in &test {
        let at_boundary = t.state.iter().zip(refined.tau()).any(|(&s, &tau)| s < tau);
        let raw_pred = model.predict(&t.state, &t.action);
        let ref_pred = refined.predict(&t.state, &t.action, &mut rng);
        let mae = |pred: &[f64]| {
            pred.iter()
                .zip(&t.next_state)
                .map(|(p, y)| (p - y).abs())
                .sum::<f64>()
                / j as f64
        };
        if at_boundary {
            raw_boundary.0 += mae(&raw_pred);
            raw_boundary.1 += 1;
            ref_boundary.0 += mae(&ref_pred);
            ref_boundary.1 += 1;
        } else {
            raw_interior.0 += mae(&raw_pred);
            raw_interior.1 += 1;
            ref_interior.0 += mae(&ref_pred);
            ref_interior.1 += 1;
        }
    }
    let avg = |(s, n): (f64, usize)| if n > 0 { s / n as f64 } else { f64::NAN };
    println!(
        "model-level MAE ({}): boundary raw={:.2} refined={:.2} ({} pts); \
         interior raw={:.2} refined={:.2} ({} pts)",
        kind.name(),
        avg(raw_boundary),
        avg(ref_boundary),
        ref_boundary.1,
        avg(raw_interior),
        avg(ref_interior),
        ref_interior.1
    );
}

fn policy_level(
    kind: EnsembleKind,
    seed: u64,
    iterations: usize,
    telemetry: &telemetry::Telemetry,
) {
    for (label, refine) in [("with refinement", true), ("without refinement", false)] {
        let ensemble = kind.ensemble();
        let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
        env.set_telemetry(telemetry.clone());
        let mut config = kind.miras_config(seed, false);
        config.refine_enabled = refine;
        let mut trainer = MirasTrainer::new(&env, config);
        trainer.set_telemetry(telemetry.clone());
        let mut last = f64::NAN;
        for _ in 0..iterations {
            last = trainer.run_iteration(&mut env).eval_return;
        }
        println!(
            "policy-level ({}, {label}): final eval return = {last:.1}",
            kind.name()
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_refinement");
    let iterations = args.iterations.unwrap_or(6);
    println!(
        "Ablation A2 — Lend–Giveback refinement (seed {})\n",
        args.seed
    );
    for kind in args.ensembles() {
        println!("##### {} #####", kind.name().to_uppercase());
        model_level(kind, args.seed);
        policy_level(kind, args.seed, iterations, &telemetry);
        println!();
    }
    telemetry.flush();
}
