//! Resilience benchmark: allocators under environment faults.
//!
//! Evaluates MIRAS (trained on the healthy environment) and the five
//! baselines — `uniform`, `stream` (DRS), `heft`, `monad`, and model-free
//! `rl` — under the fault scenarios `microsim` can inject: independent
//! consumer crashes, correlated node outages, straggler requests, and
//! queue delivery-delay spikes, plus a healthy control. Each scenario runs
//! the ensemble's first burst workload; per-scenario summaries stream to
//! `results/resilience_comparison.jsonl` as `bench.summary` events tagged
//! with a string `scenario` field.
//!
//! Expected shape: every algorithm degrades under faults (redelivered
//! requests and dead consumers cost throughput), but the adaptive
//! policies (MIRAS, `rl`) reallocate around the damage while the static
//! ones cannot; correlated node outages hurt more than the same number of
//! independent crashes.
//!
//! Run: `cargo run -p miras-bench --release --bin resilience_comparison`

use miras_bench::{run_resilience, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("resilience_comparison");
    println!(
        "Resilience benchmark (seed {}, {} scale)",
        args.seed,
        if args.smoke {
            "smoke"
        } else if args.paper {
            "paper"
        } else {
            "fast"
        }
    );
    for kind in args.ensembles() {
        let _ = run_resilience(kind, &args, &telemetry);
    }
    telemetry.flush();
}
