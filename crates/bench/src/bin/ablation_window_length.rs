//! Ablation A1: decision-window length (paper §VI-A2).
//!
//! The paper tests 5 s, 15 s, and 30 s windows and picks 30 s: a window
//! must be long enough that the 5–10 s container start-up cost is amortised,
//! but short enough to react to load changes. This ablation runs the same
//! adaptive allocator (WIP-proportional — chosen because it re-plans every
//! window and therefore feels the start-up cost directly) under all three
//! window lengths with a burst, and reports throughput and response time.
//!
//! Run: `cargo run -p miras-bench --release --bin ablation_window_length`

use baselines::{Allocator, Observation, WipProportionalAllocator};
use desim::SimTime;
use microsim::{EnvConfig, MicroserviceEnv};
use miras_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("ablation_window_length");
    println!(
        "Ablation A1 — decision-window length (seed {})\n",
        args.seed
    );
    for kind in args.ensembles() {
        let ensemble = kind.ensemble();
        let burst = kind.burst_scenarios()[0].clone();
        // Same total simulated time for each window length.
        let horizon_secs = 750u64;
        println!(
            "##### {} — burst {:?}, horizon {horizon_secs}s #####",
            kind.name().to_uppercase(),
            burst.counts()
        );
        println!(
            "{:>9} {:>7} {:>13} {:>14} {:>11} {:>10}",
            "window(s)", "steps", "completions", "mean_resp(s)", "final_wip", "decisions"
        );
        for window_secs in [5u64, 15, 30] {
            let steps = (horizon_secs / window_secs) as usize;
            let config = EnvConfig::for_ensemble(&ensemble)
                .with_seed(args.seed)
                .with_window(SimTime::from_secs(window_secs));
            let mut env = MicroserviceEnv::new(ensemble.clone(), config);
            env.set_telemetry(telemetry.clone());
            let _ = env.reset();
            env.inject_burst(&burst);
            let mut alloc =
                WipProportionalAllocator::new(ensemble.num_task_types(), env.consumer_budget());
            let mut completions = 0usize;
            let mut resp_sum = 0.0;
            let mut resp_n = 0usize;
            let mut final_wip = 0usize;
            let mut prev = None;
            for step in 0..steps {
                let wip = env.state();
                let m = alloc.allocate(&Observation::new(&wip, prev.as_ref(), step));
                let out = env.step(&m);
                completions += out.metrics.completions.iter().sum::<usize>();
                if let Some(r) = out.metrics.overall_mean_response_secs() {
                    resp_sum += r;
                    resp_n += 1;
                }
                final_wip = out.metrics.total_wip();
                prev = Some(out.metrics);
            }
            let mean_resp = if resp_n > 0 {
                resp_sum / resp_n as f64
            } else {
                0.0
            };
            println!(
                "{window_secs:>9} {steps:>7} {completions:>13} {mean_resp:>14.1} \
                 {final_wip:>11} {steps:>10}"
            );
        }
        println!(
            "(paper: 5 s windows churn containers — start-up eats the window; \
             30 s amortises start-up while staying responsive)\n"
        );
    }
    telemetry.flush();
}
