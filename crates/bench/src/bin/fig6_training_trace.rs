//! Figure 6: MIRAS policy-training traces.
//!
//! Reproduces §VI-C: run the iterative model-based loop (Algorithm 2) and,
//! at the end of every outer iteration, evaluate the greedy policy on the
//! real environment — 25 steps for MSD, 100 for LIGO — reporting the
//! aggregated reward. The paper observes convergence after about 11
//! iterations; the reproduced trace should climb and flatten the same way.
//!
//! Run: `cargo run -p miras-bench --release --bin fig6_training_trace`
//! (`--paper` for the paper's full per-iteration budgets, `--iterations N`
//! to change the trace length).

use miras_bench::{train_miras, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let (telemetry, _sink) = miras_bench::init_telemetry("fig6_training_trace");
    let iterations = args.resolved_iterations();
    println!(
        "Fig. 6 reproduction — training traces (seed {}, {} iterations, {} scale)",
        args.seed,
        iterations,
        if args.paper { "paper" } else { "fast" }
    );
    for kind in args.ensembles() {
        println!(
            "\n##### Fig. 6 — {} policy training trace #####",
            kind.name().to_uppercase()
        );
        // Always train (the trace IS the figure); cache the agent for the
        // comparison figures.
        let (reports, _agent) = train_miras(kind, &args, false, true, &telemetry);
        println!(
            "{:>9} {:>12} {:>16} {:>14} {:>10} {:>9}",
            "iteration", "model_loss", "synthetic_return", "eval_return", "dataset", "sigma"
        );
        for r in &reports {
            println!(
                "{:>9} {:>12.4} {:>16.1} {:>14.1} {:>10} {:>9.4}",
                r.iteration,
                r.model_loss,
                r.synthetic_return_mean,
                r.eval_return,
                r.dataset_size,
                r.exploration_sigma.unwrap_or(f64::NAN)
            );
        }
        // Convergence check in the spirit of the paper's observation.
        if reports.len() >= 6 {
            let early: f64 = reports[..3].iter().map(|r| r.eval_return).sum::<f64>() / 3.0;
            let late: f64 = reports[reports.len() - 3..]
                .iter()
                .map(|r| r.eval_return)
                .sum::<f64>()
                / 3.0;
            println!(
                "\nmean eval return, first 3 iterations: {early:.1}; last 3: {late:.1} \
                 (paper: trace climbs then flattens ≈ iteration 11)"
            );
        }
    }
    telemetry.flush();
}
