//! Seeded chaos harness for the hardened serving stack.
//!
//! For each seed, this binary:
//!
//! 1. trains a smoke-scale MIRAS agent and deploys it as a watched
//!    checkpoint (so checkpoint-corruption events hit a real hot-swap
//!    path),
//! 2. expands a clean recorded observation stream into a seeded fault
//!    schedule — malformed/truncated JSONL, oversized lines, mid-stream
//!    disconnects, burst overload beyond `max_inflight`, injected
//!    decision stalls past the deadline, checkpoint corruption — and
//!    replays it through the production `AdmissionQueue` +
//!    `DecisionService`,
//! 3. checks the robustness invariants (`serve::chaos::verify`): exactly
//!    one reply per delivered valid window, every rejected line counted,
//!    counters coherent with the reply stream, shed replies inert,
//! 4. re-runs the identical schedule on a fresh service and requires the
//!    delivered byte transcripts to match exactly (chaos determinism),
//! 5. runs a fault-free control schedule and requires its output to be
//!    byte-identical to a bare batch replay (chaos-off ≡ shadow replay).
//!
//! One summary JSONL line per seed goes to stdout. Any violation is
//! reported on stderr and the process exits 1 — this is the CI
//! chaos-smoke gate (`--smoke` = 3 seeds, small stream).
//!
//! Run: `cargo run --release -p miras-bench --bin serve_chaos -- --smoke`

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use baselines::{by_name, fallback, PolicyConfig};
use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
use serve::chaos::{generate_schedule, run_schedule, verify, ChaosConfig, ChaosOutcome};
use serve::{
    load_policy, record_stream, replay_stream, AdmissionConfig, CheckpointWatcher, DecisionService,
    ShedPolicy,
};
use telemetry::Telemetry;
use workflow::Ensemble;

/// Per-line byte bound for the harness — small, so the oversized corpus
/// entry stays cheap to generate and definitely trips the guard.
const MAX_LINE_BYTES: usize = 4096;

/// Deadline for the chaotic runs: far above any real smoke-agent decision
/// (so wall-clock noise cannot flip a record between the two determinism
/// runs) and far below every injected stall (>= 1s), so degradation is a
/// pure function of the schedule.
const DEADLINE: Duration = Duration::from_millis(100);

struct Args {
    seeds: Vec<u64>,
    windows: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut seeds: Option<Vec<u64>> = None;
    let mut windows = 80usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                seeds = Some(vec![1, 2, 3]);
                windows = 40;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a count")?;
                let n: u64 = v.parse().map_err(|_| format!("--seeds: bad count '{v}'"))?;
                seeds = Some((1..=n).collect());
            }
            "--windows" => {
                let v = it.next().ok_or("--windows needs a count")?;
                windows = v
                    .parse()
                    .map_err(|_| format!("--windows: bad count '{v}'"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (--smoke | --seeds N | --windows N)"
                ))
            }
        }
    }
    Ok(Args {
        seeds: seeds.unwrap_or_else(|| vec![1, 2, 3, 4, 5]),
        windows,
    })
}

fn checkpoint_fixture(path: &PathBuf) -> Result<(), String> {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(9);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(9));
    trainer.run_iteration(&mut env);
    let json = serde_json::to_string(&trainer.agent()).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())
}

/// A hardened service over the checkpoint, fresh counters, watcher armed.
fn build_service(checkpoint: &PathBuf, ensemble: &Ensemble) -> Result<DecisionService, String> {
    let (policy, _version) =
        load_policy(checkpoint).map_err(|e| format!("loading fixture: {e}"))?;
    let cfg = PolicyConfig::new(ensemble);
    Ok(DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(checkpoint.clone()))
        .with_deadline(DEADLINE)
        .with_fallback(fallback(&cfg))
        .with_expected_dims(ensemble.num_task_types())
        .with_max_line_bytes(MAX_LINE_BYTES))
}

fn transcript_bytes(outcome: &ChaosOutcome, clients: usize) -> String {
    outcome.transcript(clients).concat()
}

fn run_seed(
    seed: u64,
    base_lines: &[String],
    checkpoint: &PathBuf,
    ensemble: &Ensemble,
) -> Result<String, String> {
    let config = ChaosConfig {
        seed,
        clients: 3,
        malformed: 0.15,
        disconnect: 0.04,
        stall: 0.10,
        corrupt: 0.06,
        burst: 4,
    };
    let admission = AdmissionConfig {
        max_inflight: 4,
        shed: if seed % 2 == 0 {
            ShedPolicy::DropOldest
        } else {
            ShedPolicy::Reject
        },
    };
    let schedule = generate_schedule(&config, base_lines, MAX_LINE_BYTES);

    // Run 1: invariants.
    let mut svc = build_service(checkpoint, ensemble)?;
    let outcome = run_schedule(&mut svc, admission, &schedule, Some(checkpoint));
    verify(&outcome).map_err(|v| format!("seed {seed}: invariant violated: {v}"))?;

    // Run 2: byte determinism of the delivered transcripts.
    let mut svc2 = build_service(checkpoint, ensemble)?;
    let outcome2 = run_schedule(&mut svc2, admission, &schedule, Some(checkpoint));
    let (t1, t2) = (
        transcript_bytes(&outcome, config.clients),
        transcript_bytes(&outcome2, config.clients),
    );
    if t1 != t2 {
        return Err(format!(
            "seed {seed}: chaos replay is not byte-deterministic ({} vs {} transcript bytes)",
            t1.len(),
            t2.len()
        ));
    }

    // Control: chaos off, overload off — must equal bare batch replay.
    // The control service carries no deadline: with no injected stalls,
    // degradation would hinge on wall-clock noise, which is exactly what
    // the byte-identity claim excludes.
    let quiet = ChaosConfig::quiet(seed);
    let quiet_schedule = generate_schedule(&quiet, base_lines, MAX_LINE_BYTES);
    let (policy, _version) = load_policy(checkpoint).map_err(|e| e.to_string())?;
    let mut control = DecisionService::new(policy, Telemetry::noop())
        .with_expected_dims(ensemble.num_task_types())
        .with_max_line_bytes(MAX_LINE_BYTES);
    let control_outcome = run_schedule(
        &mut control,
        AdmissionConfig::default(),
        &quiet_schedule,
        None,
    );
    verify(&control_outcome).map_err(|v| format!("seed {seed}: control invariant: {v}"))?;
    let control_bytes = transcript_bytes(&control_outcome, 1);
    let (mut bare, _) = load_policy(checkpoint).map_err(|e| e.to_string())?;
    let replay_bytes: String = replay_stream(bare.as_mut(), &base_lines.join("\n"))
        .iter()
        .map(|r| r.to_line() + "\n")
        .collect();
    if control_bytes != replay_bytes {
        return Err(format!(
            "seed {seed}: chaos-off control diverges from batch replay ({} vs {} bytes)",
            control_bytes.len(),
            replay_bytes.len()
        ));
    }

    Ok(format!(
        "{{\"seed\":{seed},\"events\":{},\"replies\":{},\"decisions\":{},\"shed\":{},\"degraded\":{},\"wire_rejected\":{},\"dropped_replies\":{},\"disconnects\":{},\"swap_attempts_survived\":true,\"deterministic\":true,\"control_matches_replay\":true}}",
        schedule.events.len(),
        outcome.replies.len(),
        outcome.decisions(),
        outcome.counters.shed,
        outcome.counters.degraded,
        outcome.counters.wire_rejected,
        outcome.counters.dropped_replies,
        outcome.counters.disconnects,
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_chaos: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ensemble = Ensemble::msd();
    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).expect("uniform exists");
    let base_lines: Vec<String> = record_stream(&ensemble, 7, args.windows, None, driver.as_mut())
        .iter()
        .map(|obs| serde_json::to_string(obs).expect("observations serialize"))
        .collect();

    let checkpoint = std::env::temp_dir().join(format!(
        "miras_serve_chaos_fixture_{}.json",
        std::process::id()
    ));
    if let Err(e) = checkpoint_fixture(&checkpoint) {
        eprintln!("serve_chaos: building checkpoint fixture: {e}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for &seed in &args.seeds {
        match run_seed(seed, &base_lines, &checkpoint, &ensemble) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("serve_chaos: {e}");
                failed = true;
            }
        }
    }
    let _ = std::fs::remove_file(&checkpoint);
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!(
            "serve_chaos: {} seeds x {} windows: all invariants held, chaos replay deterministic, chaos-off control byte-identical to replay",
            args.seeds.len(),
            args.windows
        );
        ExitCode::SUCCESS
    }
}
