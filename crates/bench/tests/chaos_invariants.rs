//! End-to-end chaos invariants against a *real* trained MIRAS checkpoint:
//! corruption of the watched checkpoint mid-run must never panic, never
//! lose a reply, and never leave the service on a broken policy — and a
//! post-chaos hot-swap to a newer checkpoint must still work.
//!
//! The cheap-policy variants of these properties live in
//! `crates/serve/tests/chaos_properties.rs`; this test exists because
//! checkpoint corruption only exercises the real load/validate path when
//! the checkpoint actually contains a trained agent.

use std::path::PathBuf;

use baselines::{by_name, fallback, PolicyConfig};
use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
use serve::chaos::{generate_schedule, run_schedule, verify, ChaosConfig, ChaosEvent};
use serve::{
    load_policy, record_stream, AdmissionConfig, CheckpointWatcher, DecisionService, ShedPolicy,
};
use telemetry::Telemetry;
use workflow::Ensemble;

const MAX_LINE_BYTES: usize = 4096;

fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "miras_chaos_invariants_{tag}_{}.json",
        std::process::id()
    ))
}

#[test]
fn checkpoint_corruption_under_chaos_never_breaks_the_service() {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(21);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(21));
    trainer.run_iteration(&mut env);
    let ckpt = temp_checkpoint("agent");
    let agent_json = serde_json::to_string(&trainer.agent()).unwrap();
    std::fs::write(&ckpt, &agent_json).unwrap();

    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
    let base_lines: Vec<String> = record_stream(&ensemble, 23, 40, None, driver.as_mut())
        .iter()
        .map(|obs| serde_json::to_string(obs).unwrap())
        .collect();

    // Corruption-heavy mix so the watcher's reject path definitely runs.
    let config = ChaosConfig {
        seed: 99,
        clients: 2,
        malformed: 0.10,
        disconnect: 0.02,
        stall: 0.08,
        corrupt: 0.30,
        burst: 3,
    };
    let schedule = generate_schedule(&config, &base_lines, MAX_LINE_BYTES);
    assert!(
        schedule.events.contains(&ChaosEvent::CorruptCheckpoint),
        "a 30% corruption rate over 40 windows must schedule corruption"
    );

    let (policy, _version) = load_policy(&ckpt).unwrap();
    let cfg = PolicyConfig::new(&ensemble);
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(ckpt.clone()))
        .with_deadline(std::time::Duration::from_millis(100))
        .with_fallback(fallback(&cfg))
        .with_expected_dims(ensemble.num_task_types())
        .with_max_line_bytes(MAX_LINE_BYTES);

    let admission = AdmissionConfig {
        max_inflight: 4,
        shed: ShedPolicy::DropOldest,
    };
    let outcome = run_schedule(&mut svc, admission, &schedule, Some(&ckpt));
    verify(&outcome).expect("chaos invariants hold against a trained checkpoint");
    assert!(outcome.decisions() > 0, "some windows decided under chaos");

    // The service survived corruption on a *policy that still works*: it
    // answers a fresh window non-degraded (no stall pending).
    let probe = serve::parse_observation_line(&base_lines[0], MAX_LINE_BYTES, None)
        .unwrap()
        .unwrap();
    let record = svc.handle(&probe);
    assert!(record.is_actionable());
    assert!(!record.degraded);

    // And hot-swap still works after all that: write a *newer, valid*
    // checkpoint and confirm the watcher picks it up.
    trainer.run_iteration(&mut env);
    std::fs::write(&ckpt, serde_json::to_string(&trainer.agent()).unwrap()).unwrap();
    let swaps_before = svc.swaps();
    let _ = svc.handle(&probe);
    assert_eq!(
        svc.swaps(),
        swaps_before + 1,
        "post-chaos checkpoint publish must still hot-swap"
    );

    let _ = std::fs::remove_file(&ckpt);
}
