//! Shadow-mode determinism: the serving loop's decision stream is
//! byte-identical to a batch replay of the same observations at the same
//! checkpoint, and both match the bare agent's `allocate` — the serving
//! layer adds no numerics of its own.

use std::path::PathBuf;

use baselines::{by_name, PolicyConfig};
use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{CheckpointPayload, ClusterEnvAdapter, MirasConfig, MirasTrainer};
use serve::{
    load_policy, record_stream, replay_stream, CheckpointWatcher, DecisionRecord, DecisionService,
    WindowObservation,
};
use telemetry::Telemetry;
use workflow::Ensemble;

fn temp_checkpoint() -> PathBuf {
    std::env::temp_dir().join(format!(
        "miras_bench_serve_shadow_{}.json",
        std::process::id()
    ))
}

#[test]
fn shadow_stream_is_byte_identical_to_batch_replay_and_the_bare_agent() {
    // Train a smoke-scale agent and persist the full checkpoint.
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(13);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(13));
    trainer.run_iteration(&mut env);
    let ckpt = temp_checkpoint();
    trainer.save_checkpoint(&env, &ckpt).unwrap();

    // A 50-window recorded stream, as the CI smoke uses.
    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
    let observations = record_stream(&ensemble, 17, 50, None, driver.as_mut());
    let text: String = observations
        .iter()
        .map(|o| serde_json::to_string(o).unwrap() + "\n")
        .collect();

    // Shadow run: full service machinery — telemetry-free here, but with
    // the hot-swap watcher armed (the file never changes, so it must be a
    // no-op).
    let (policy, version) = load_policy(&ckpt).unwrap();
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(ckpt.clone()));
    let shadow = svc.handle_stream(&text);
    assert_eq!(svc.swaps(), 0, "an unchanged checkpoint must not swap");

    // Batch replay: bare policy, no service machinery.
    let (mut bare, _) = load_policy(&ckpt).unwrap();
    let batch = replay_stream(bare.as_mut(), &text);

    let shadow_bytes: Vec<String> = shadow.iter().map(DecisionRecord::to_line).collect();
    let batch_bytes: Vec<String> = batch.iter().map(DecisionRecord::to_line).collect();
    assert_eq!(
        shadow_bytes, batch_bytes,
        "shadow must equal batch replay byte-for-byte"
    );

    // Both must equal the checkpoint's deployable agent called directly.
    let payload = CheckpointPayload::load(&ckpt).unwrap();
    let agent = payload.deployable_agent();
    for (record, obs) in shadow.iter().zip(&observations) {
        let direct = agent.allocate(&obs.wip);
        assert_eq!(record.allocations, direct, "window {}", obs.window);
        assert_eq!(record.policy, "miras");
        assert_eq!(record.policy_version, version);
    }

    // Latency accounting covered every decision; report the percentiles so
    // test logs document the serving overhead (the <1 ms budget is gated in
    // release CI, not in this possibly-debug build).
    let stats = svc.latency_stats().unwrap();
    assert_eq!(stats.count, 50);
    assert!(stats.p50_us > 0.0 && stats.p99_us >= stats.p50_us && stats.max_us >= stats.p99_us);
    println!(
        "serve shadow latency over {} decisions: p50 {:.1}us p99 {:.1}us max {:.1}us",
        stats.count, stats.p50_us, stats.p99_us, stats.max_us
    );

    let _ = std::fs::remove_file(ckpt);
}

#[test]
fn recorded_streams_round_trip_through_the_wire_format() {
    let ensemble = Ensemble::msd();
    let mut driver = by_name("stream", &PolicyConfig::new(&ensemble)).unwrap();
    let observations = record_stream(&ensemble, 23, 10, None, driver.as_mut());
    for obs in &observations {
        let line = serde_json::to_string(obs).unwrap();
        let back: WindowObservation = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, obs);
    }
}
