//! The resilience benchmark must cover every scenario × allocator cell and
//! keep its metrics finite even with every fault class firing.

use miras_bench::{fault_scenarios, run_resilience, summarize, BenchArgs, EnsembleKind};
use telemetry::{JsonlSink, Telemetry};

#[test]
fn resilience_smoke_covers_all_scenarios_and_algorithms() {
    let args = BenchArgs {
        ensemble: Some(EnsembleKind::Msd),
        seed: 9,
        paper: false,
        iterations: None,
        no_cache: true,
        steady: false,
        smoke: true,
        workload: microsim::WorkloadSpec::Stationary,
    };
    let sink = JsonlSink::in_memory();
    let telemetry = Telemetry::new(sink.clone());
    let results = run_resilience(EnsembleKind::Msd, &args, &telemetry);
    telemetry.flush();

    let scenarios = fault_scenarios();
    let algorithms = ["miras", "uniform", "stream", "heft", "monad", "rl"];
    assert_eq!(results.len(), scenarios.len() * algorithms.len());
    for scenario in &scenarios {
        for algorithm in algorithms {
            let (_, _, records) = results
                .iter()
                .find(|(s, a, _)| s == scenario.name && a == algorithm)
                .unwrap_or_else(|| panic!("missing {}/{algorithm}", scenario.name));
            assert!(!records.is_empty());
            let summary = summarize(algorithm, records);
            assert!(
                summary.total_reward.is_finite() && summary.mean_response_secs.is_finite(),
                "non-finite metrics for {}/{algorithm}",
                scenario.name
            );
        }
    }

    // The JSONL stream segments per scenario via a string field.
    let stream = String::from_utf8(sink.take_output()).unwrap();
    for scenario in &scenarios {
        assert!(
            stream.contains(&format!("\"scenario\":\"{}\"", scenario.name)),
            "scenario {} missing from stream",
            scenario.name
        );
    }
    assert!(stream.contains("\"name\":\"bench.summary\""));
}

/// Faults must actually bite: with the crash scenario's failure rate, the
/// emulator records consumer failures that the healthy control never sees.
#[test]
fn fault_scenarios_perturb_the_environment() {
    use microsim::{EnvConfig, MicroserviceEnv};
    use workflow::Ensemble;

    let scenarios = fault_scenarios();
    let crashes = scenarios.iter().find(|s| s.name == "crashes").unwrap();
    let ensemble = Ensemble::msd();
    let base = EnvConfig::for_ensemble(&ensemble).with_seed(4);
    let config = base.clone().with_sim(crashes.apply(base.sim().clone()));
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_burst(&workflow::BurstSpec::new(vec![100, 100, 100]));
    for _ in 0..10 {
        let _ = env.step(&[4, 4, 3, 3]);
    }
    assert!(
        env.cluster().consumer_failures() > 0,
        "crash scenario produced no consumer failures"
    );
}
