//! The parallel evaluation grid must be invisible in the output: running
//! the scenario × algorithm sweep on one worker or many must produce the
//! same records AND the same telemetry event stream, byte for byte. Worker
//! count is driven through `MIRAS_GRID_THREADS`, which `grid_threads()`
//! re-reads on every call precisely so this test can flip it in-process.

use std::sync::Mutex;

use microsim::WorkloadSpec;
use miras_bench::{grid_threads, run_grid, run_resilience, BenchArgs, EnsembleKind, StepRecord};
use telemetry::{JsonlSink, Telemetry};

/// All tests in this file mutate `MIRAS_GRID_THREADS`; serialise them so
/// the libtest thread pool cannot interleave the env-var writes.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn smoke_args(seed: u64) -> BenchArgs {
    BenchArgs {
        ensemble: Some(EnsembleKind::Msd),
        seed,
        paper: false,
        iterations: None,
        no_cache: true,
        steady: false,
        smoke: true,
        workload: WorkloadSpec::Stationary,
    }
}

type GridResults = Vec<(String, String, Vec<StepRecord>)>;

/// Runs the full resilience pipeline with the given worker count and
/// returns the grid results plus the `"t":"event"` rows of the JSONL
/// stream. Only event rows are compared: counter/gauge rows are aggregates
/// (order-free) and histogram rows carry wall-clock span timings, which are
/// legitimately nondeterministic.
fn run_with_workers(workers: &str, seed: u64) -> (GridResults, Vec<String>) {
    std::env::set_var("MIRAS_GRID_THREADS", workers);
    let sink = JsonlSink::in_memory();
    let telemetry = Telemetry::new(sink.clone());
    let results = run_resilience(EnsembleKind::Msd, &smoke_args(seed), &telemetry);
    telemetry.flush();
    std::env::remove_var("MIRAS_GRID_THREADS");
    let out = String::from_utf8(sink.take_output()).unwrap();
    let events = out
        .lines()
        .filter(|l| l.contains("\"t\":\"event\""))
        .map(str::to_string)
        .collect();
    (results, events)
}

#[test]
fn grid_results_and_event_stream_match_across_worker_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (serial_results, serial_events) = run_with_workers("1", 33);
    let (parallel_results, parallel_events) = run_with_workers("4", 33);

    // The grid covers every scenario × algorithm cell, in a stable order.
    assert_eq!(serial_results.len(), 5 * 6, "scenarios × algorithms");
    let key = |r: &(String, String, Vec<StepRecord>)| (r.0.clone(), r.1.clone());
    assert_eq!(
        serial_results.iter().map(key).collect::<Vec<_>>(),
        parallel_results.iter().map(key).collect::<Vec<_>>()
    );
    // Records are bit-identical (StepRecord is all PartialEq floats).
    assert_eq!(serial_results, parallel_results);

    // The replayed telemetry stream is byte-identical, including the
    // monotonic per-event sequence numbers assigned by the sink.
    assert_eq!(serial_events.len(), parallel_events.len());
    for (i, (a, b)) in serial_events.iter().zip(&parallel_events).enumerate() {
        assert_eq!(a, b, "event row {i} differs");
    }
}

#[test]
fn grid_threads_env_var_is_reread_per_call() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("MIRAS_GRID_THREADS", "3");
    assert_eq!(grid_threads(), 3);
    std::env::set_var("MIRAS_GRID_THREADS", "1");
    assert_eq!(grid_threads(), 1);
    std::env::remove_var("MIRAS_GRID_THREADS");
    assert!(grid_threads() >= 1);
}

#[test]
fn run_grid_preserves_cell_order() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("MIRAS_GRID_THREADS", "4");
    let tasks: Vec<_> = (0..17).map(|i| move || i * i).collect();
    let out = run_grid(tasks);
    std::env::remove_var("MIRAS_GRID_THREADS");
    assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
}
