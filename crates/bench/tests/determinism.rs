//! Telemetry must be observation-only: a figure run with a recording sink
//! attached must produce bit-identical results to the same run with the
//! no-op recorder. This is the repo's guard against instrumentation ever
//! consuming randomness or perturbing the computation.

use microsim::WorkloadSpec;
use miras_bench::{run_comparison, run_workload_grid, workload_zoo, BenchArgs, EnsembleKind};
use telemetry::{JsonlSink, Telemetry};

fn smoke_args(seed: u64) -> BenchArgs {
    BenchArgs {
        ensemble: Some(EnsembleKind::Msd),
        seed,
        paper: false,
        iterations: None,
        no_cache: true,
        steady: false,
        smoke: true,
        workload: WorkloadSpec::Stationary,
    }
}

/// Runs the full Fig. 7 pipeline (MIRAS training, model-free DDPG training,
/// three burst scenarios × five allocators) at smoke scale twice — once with
/// the no-op recorder, once with a JSONL sink — and requires the per-window
/// records to serialize identically byte for byte.
#[test]
fn fig7_smoke_run_is_bit_identical_with_recorder_attached() {
    let args = smoke_args(5);

    let silent = run_comparison(EnsembleKind::Msd, &args, &Telemetry::noop());

    let sink = JsonlSink::in_memory();
    let telemetry = Telemetry::new(sink.clone());
    let recorded = run_comparison(EnsembleKind::Msd, &args, &telemetry);
    telemetry.flush();

    assert_eq!(silent.len(), recorded.len());
    for ((scenario_a, name_a, records_a), (scenario_b, name_b, records_b)) in
        silent.iter().zip(&recorded)
    {
        assert_eq!(scenario_a, scenario_b);
        assert_eq!(name_a, name_b);
        // Bit-exactness, not approximate equality: serialize both series
        // (the vendored serde_json round-trips f64 exactly) and compare.
        let json_a = serde_json::to_string(records_a).expect("serializable");
        let json_b = serde_json::to_string(records_b).expect("serializable");
        assert_eq!(json_a, json_b, "{name_a} diverged in scenario {scenario_a}");
    }

    // The recording run must actually have produced the stream the figure
    // binaries ship: per-window events from the environment and
    // per-iteration events from Algorithm 2.
    let stream = String::from_utf8(sink.take_output()).expect("utf-8 JSONL");
    assert!(
        stream.contains("\"name\":\"window\""),
        "no window events in stream"
    );
    assert!(
        stream.contains("\"name\":\"iteration\""),
        "no iteration events in stream"
    );
    assert!(
        stream.contains("\"name\":\"bench.summary\""),
        "no summary events in stream"
    );
}

/// The workload × algorithm grid must be byte-identical at any worker
/// count: cells are independent (no shared RNG stream), so a sequential
/// sweep and a multi-worker sweep produce the same records.
#[test]
fn workload_grid_smoke_is_worker_count_invariant() {
    let args = smoke_args(9);
    let workloads = workload_zoo();

    // Worker count does not alter any cell's inputs, so flipping the env
    // var mid-process (it is re-read on every run_grid call) only changes
    // scheduling, never results.
    std::env::set_var("MIRAS_GRID_THREADS", "1");
    let sequential = run_workload_grid(EnsembleKind::Msd, &args, &workloads, &Telemetry::noop());
    std::env::set_var("MIRAS_GRID_THREADS", "4");
    let parallel = run_workload_grid(EnsembleKind::Msd, &args, &workloads, &Telemetry::noop());
    std::env::remove_var("MIRAS_GRID_THREADS");

    assert_eq!(sequential.len(), parallel.len());
    assert_eq!(sequential.len(), workloads.len() * 5);
    for ((workload_a, name_a, records_a), (workload_b, name_b, records_b)) in
        sequential.iter().zip(&parallel)
    {
        assert_eq!(workload_a, workload_b);
        assert_eq!(name_a, name_b);
        let json_a = serde_json::to_string(records_a).expect("serializable");
        let json_b = serde_json::to_string(records_b).expect("serializable");
        assert_eq!(
            json_a, json_b,
            "{name_a} diverged under workload {workload_a}"
        );
    }
}
