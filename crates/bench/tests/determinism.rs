//! Telemetry must be observation-only: a figure run with a recording sink
//! attached must produce bit-identical results to the same run with the
//! no-op recorder. This is the repo's guard against instrumentation ever
//! consuming randomness or perturbing the computation.

use miras_bench::{run_comparison, BenchArgs, EnsembleKind};
use telemetry::{JsonlSink, Telemetry};

fn smoke_args(seed: u64) -> BenchArgs {
    BenchArgs {
        ensemble: Some(EnsembleKind::Msd),
        seed,
        paper: false,
        iterations: None,
        no_cache: true,
        steady: false,
        smoke: true,
    }
}

/// Runs the full Fig. 7 pipeline (MIRAS training, model-free DDPG training,
/// three burst scenarios × five allocators) at smoke scale twice — once with
/// the no-op recorder, once with a JSONL sink — and requires the per-window
/// records to serialize identically byte for byte.
#[test]
fn fig7_smoke_run_is_bit_identical_with_recorder_attached() {
    let args = smoke_args(5);

    let silent = run_comparison(EnsembleKind::Msd, &args, &Telemetry::noop());

    let sink = JsonlSink::in_memory();
    let telemetry = Telemetry::new(sink.clone());
    let recorded = run_comparison(EnsembleKind::Msd, &args, &telemetry);
    telemetry.flush();

    assert_eq!(silent.len(), recorded.len());
    for ((scenario_a, name_a, records_a), (scenario_b, name_b, records_b)) in
        silent.iter().zip(&recorded)
    {
        assert_eq!(scenario_a, scenario_b);
        assert_eq!(name_a, name_b);
        // Bit-exactness, not approximate equality: serialize both series
        // (the vendored serde_json round-trips f64 exactly) and compare.
        let json_a = serde_json::to_string(records_a).expect("serializable");
        let json_b = serde_json::to_string(records_b).expect("serializable");
        assert_eq!(json_a, json_b, "{name_a} diverged in scenario {scenario_a}");
    }

    // The recording run must actually have produced the stream the figure
    // binaries ship: per-window events from the environment and
    // per-iteration events from Algorithm 2.
    let stream = String::from_utf8(sink.take_output()).expect("utf-8 JSONL");
    assert!(
        stream.contains("\"name\":\"window\""),
        "no window events in stream"
    );
    assert!(
        stream.contains("\"name\":\"iteration\""),
        "no iteration events in stream"
    );
    assert!(
        stream.contains("\"name\":\"bench.summary\""),
        "no summary events in stream"
    );
}
