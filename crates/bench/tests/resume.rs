//! Crash-safety guarantees, end to end: a training run killed after a
//! checkpoint and resumed from disk must be bit-identical to one that was
//! never interrupted, and damaged checkpoints must be rejected cleanly.

use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{CheckpointError, ClusterEnvAdapter, MirasConfig, MirasTrainer};
use workflow::Ensemble;

fn fresh(seed: u64) -> (MirasTrainer, ClusterEnvAdapter) {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
    let trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(seed.wrapping_add(100)));
    (trainer, env)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miras_resume_test_{name}.json"))
}

/// Property over seeds: for every seed, save → load → train(k) equals an
/// uninterrupted train(k), bit for bit. The comparison serializes the full
/// post-training state (agent snapshot + environment snapshot) through the
/// vendored serde_json, which round-trips f64 exactly.
#[test]
fn save_load_train_is_bit_identical_across_seeds() {
    for seed in [3u64, 17, 61] {
        let path = temp_path(&format!("prop_{seed}"));

        // Uninterrupted reference run: 2 iterations.
        let (mut ref_trainer, mut ref_env) = fresh(seed);
        let _ = ref_trainer.run_iteration(&mut ref_env);
        let ref_report = ref_trainer.run_iteration(&mut ref_env);

        // Killed run: 1 iteration, checkpoint, process "dies".
        let (mut trainer, mut env) = fresh(seed);
        let _ = trainer.run_iteration(&mut env);
        trainer.save_checkpoint(&env, &path).unwrap();
        drop(trainer);
        drop(env);

        // Resurrected run: resume from disk, continue.
        let (mut resumed, mut env) = MirasTrainer::resume(&path, Ensemble::msd()).unwrap();
        let report = resumed.run_iteration(&mut env);

        assert_eq!(report, ref_report, "report diverged for seed {seed}");
        let a = serde_json::to_string(&resumed.agent_mut().snapshot()).unwrap();
        let b = serde_json::to_string(&ref_trainer.agent_mut().snapshot()).unwrap();
        assert_eq!(a, b, "agent state diverged for seed {seed}");
        let ea = serde_json::to_string(&env.snapshot()).unwrap();
        let eb = serde_json::to_string(&ref_env.snapshot()).unwrap();
        assert_eq!(ea, eb, "environment state diverged for seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}

/// A checkpoint truncated at any point — as a crash racing the filesystem
/// could leave it, were the save not atomic — must be rejected as corrupt,
/// never half-loaded.
#[test]
fn truncated_checkpoints_are_rejected_at_every_cut() {
    let path = temp_path("truncation");
    let (mut trainer, mut env) = fresh(23);
    let _ = trainer.run_iteration(&mut env);
    trainer.save_checkpoint(&env, &path).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();

    for fraction in [0, 1, 2, 3] {
        let cut = full.len() * fraction / 4 + fraction; // 0, ~¼, ~½, ~¾
        let cut = cut.min(full.len() - 1);
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = MirasTrainer::resume(&path, Ensemble::msd()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt(_)),
            "cut at {cut}/{} gave {err}",
            full.len()
        );
    }

    // The intact payload still loads after all that abuse.
    std::fs::write(&path, &full).unwrap();
    assert!(MirasTrainer::resume(&path, Ensemble::msd()).is_ok());
    std::fs::remove_file(&path).ok();
}

/// Garbage that is valid JSON but not a checkpoint is also rejected.
#[test]
fn foreign_json_is_rejected() {
    let path = temp_path("foreign");
    std::fs::write(&path, "{\"version\":1,\"surprise\":true}").unwrap();
    let err = MirasTrainer::resume(&path, Ensemble::msd()).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt(_)), "got {err}");
    std::fs::remove_file(&path).ok();
}
