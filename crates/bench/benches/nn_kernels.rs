//! Criterion benchmarks for the `nn` compute core and the training paths
//! that funnel through it: raw matmul kernels across sizes, the fused layer
//! products, and end-to-end train steps for the dynamics model and DDPG.
//!
//! Run: `cargo bench -p miras-bench --bench nn_kernels`
//!
//! `BENCH_nn.json` records before/after medians for the perf-optimisation
//! work; the `*_naive` entries time the reference kernels kept in
//! `nn::Matrix` for comparison against the tiled implementations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use miras_core::{DynamicsModel, MirasConfig, Transition, TransitionDataset};
use nn::{Activation, Adam, Matrix, Mlp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rl::{Ddpg, DdpgConfig};

fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SmallRng::seed_from_u64(11);
    for n in [32usize, 64, 128, 256, 512] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        if n >= 256 {
            group.sample_size(10);
        }
        group.bench_function(format!("matmul_{n}"), |bench| {
            bench.iter(|| black_box(black_box(&a).matmul(black_box(&b))));
        });
        if n == 256 {
            group.bench_function(format!("naive_matmul_{n}"), |bench| {
                bench.iter(|| black_box(black_box(&a).naive_matmul(black_box(&b))));
            });
        }
    }
    group.finish();
}

fn bench_fused_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_products");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(12);
    let a = random_matrix(256, 256, &mut rng);
    let b = random_matrix(256, 256, &mut rng);
    group.bench_function("transpose_matmul_256", |bench| {
        bench.iter(|| black_box(black_box(&a).transpose_matmul(black_box(&b))));
    });
    group.bench_function("matmul_transpose_256", |bench| {
        bench.iter(|| black_box(black_box(&a).matmul_transpose(black_box(&b))));
    });
    group.bench_function("naive_transpose_matmul_256", |bench| {
        bench.iter(|| black_box(black_box(&a).naive_transpose_matmul(black_box(&b))));
    });
    group.bench_function("naive_matmul_transpose_256", |bench| {
        bench.iter(|| black_box(black_box(&a).naive_matmul_transpose(black_box(&b))));
    });
    group.finish();
}

/// A LIGO-scale transition dataset (9 task types) with toy linear dynamics.
fn ligo_scale_dataset(n: usize, seed: u64) -> TransitionDataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = TransitionDataset::new(9);
    for _ in 0..n {
        let s: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..40.0)).collect();
        let a: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..4.0)).collect();
        let next: Vec<f64> = s
            .iter()
            .zip(&a)
            .map(|(&si, &ai)| (si - 2.0 * ai).max(0.0) + 1.0)
            .collect();
        data.push(Transition {
            state: s,
            action: a,
            next_state: next,
        });
    }
    data
}

fn bench_dynamics_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics");
    group.sample_size(10);
    // Paper-scale environment model: LIGO state (9 task types), wide hidden
    // layers, one epoch of minibatch SGD over a 512-transition dataset.
    let data = ligo_scale_dataset(512, 13);
    let mut config = MirasConfig::smoke_test(14);
    config.model_hidden = vec![256, 256];
    let mut model = DynamicsModel::new(9, &config);
    group.bench_function("dynamics_train_epoch_h256_n512", |bench| {
        bench.iter(|| black_box(model.train(black_box(&data), 1, 64)));
    });
    group.finish();
}

fn bench_mlp_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(15);
    // The paper's LIGO actor shape trained on one minibatch.
    let mut net = Mlp::new(
        &[9, 256, 256, 256, 9],
        Activation::Relu,
        Activation::Linear,
        &mut rng,
    );
    let mut opt = Adam::new(1e-3);
    let x = random_matrix(64, 9, &mut rng);
    let y = random_matrix(64, 9, &mut rng);
    group.bench_function("train_mse_h256x3_batch64", |bench| {
        bench.iter(|| black_box(net.train_mse(black_box(&x), black_box(&y), &mut opt)));
    });
    group.finish();
}

fn bench_ddpg_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddpg_paper");
    group.sample_size(10);
    // Paper MSD configuration: hidden [256; 3], batch 64.
    let mut agent = Ddpg::new(4, 4, DdpgConfig::paper(256, 16));
    for i in 0..256 {
        let s = [i as f64 % 13.0, i as f64 % 7.0, i as f64 % 5.0, 1.0];
        agent.observe(&s, &[0.25; 4], -(i as f64 % 9.0), &s);
    }
    group.bench_function("train_step_hidden256_batch64", |bench| {
        bench.iter(|| black_box(agent.train_step()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_sizes,
    bench_fused_products,
    bench_dynamics_train_step,
    bench_mlp_train_step,
    bench_ddpg_train_step,
);
criterion_main!(benches);
