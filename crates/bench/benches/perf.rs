//! Criterion performance benchmarks for the reproduction's building blocks:
//! emulator step throughput, neural-network training throughput, DDPG
//! update latency, and per-window allocator decision latency.
//!
//! Run: `cargo bench -p miras-bench`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use microsim::{EnvConfig, MicroserviceEnv};
use nn::{Activation, Adam, Matrix, Mlp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rl::{Ddpg, DdpgConfig};
use workflow::{BurstSpec, Ensemble};

fn bench_env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("microsim");
    for (name, ensemble) in [("msd", Ensemble::msd()), ("ligo", Ensemble::ligo())] {
        group.bench_function(format!("env_step_30s_window_{name}"), |b| {
            let budget = ensemble.default_consumer_budget();
            let j = ensemble.num_task_types();
            let config = EnvConfig::for_ensemble(&ensemble).with_seed(1);
            let mut env = MicroserviceEnv::new(ensemble.clone(), config);
            let _ = env.reset();
            env.inject_burst(&BurstSpec::new(vec![50; ensemble.num_workflow_types()]));
            let action = vec![budget / j; j];
            b.iter(|| black_box(env.step(black_box(&action))));
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    let mut rng = SmallRng::seed_from_u64(2);
    // The paper's MSD actor architecture.
    let net = Mlp::new(
        &[4, 256, 256, 256, 4],
        Activation::Relu,
        Activation::Softmax,
        &mut rng,
    );
    let batch = Matrix::zeros(64, 4);
    group.bench_function("forward_actor256_batch64", |b| {
        b.iter(|| black_box(net.forward(black_box(&batch))));
    });

    let mut train_net = Mlp::new(
        &[8, 20, 20, 20, 4],
        Activation::Relu,
        Activation::Linear,
        &mut rng,
    );
    let mut opt = Adam::new(1e-3);
    let x = Matrix::zeros(64, 8);
    let y = Matrix::zeros(64, 4);
    group.bench_function("train_mse_envmodel20_batch64", |b| {
        b.iter(|| black_box(train_net.train_mse(black_box(&x), black_box(&y), &mut opt)));
    });
    group.finish();
}

fn bench_ddpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddpg");
    group.sample_size(20);
    let mut agent = Ddpg::new(4, 4, DdpgConfig::paper(64, 3));
    for i in 0..256 {
        let s = [i as f64 % 13.0, i as f64 % 7.0, i as f64 % 5.0, 1.0];
        agent.observe(&s, &[0.25; 4], -(i as f64 % 9.0), &s);
    }
    group.bench_function("train_step_hidden64_batch64", |b| {
        b.iter(|| black_box(agent.train_step()));
    });
    group.bench_function("act_greedy", |b| {
        b.iter(|| black_box(agent.act(black_box(&[3.0, 1.0, 4.0, 1.0]))));
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    use baselines::{Allocator, DrsAllocator, HeftAllocator, MonadAllocator, Observation};
    let mut group = c.benchmark_group("allocators");
    let ensemble = Ensemble::ligo();
    let wip = vec![12.0, 30.0, 55.0, 8.0, 4.0, 6.0, 2.0, 40.0, 3.0];

    let mut drs = DrsAllocator::new(&ensemble, 30, 30.0);
    group.bench_function("drs_ligo_decision", |b| {
        b.iter(|| black_box(drs.allocate(black_box(&Observation::first(&wip)))));
    });
    let mut heft = HeftAllocator::new(&ensemble, 30);
    group.bench_function("heft_ligo_decision", |b| {
        b.iter(|| black_box(heft.allocate(black_box(&Observation::first(&wip)))));
    });
    let mut monad = MonadAllocator::new(9, 30, 30.0);
    group.bench_function("monad_ligo_decision", |b| {
        b.iter(|| black_box(monad.allocate(black_box(&Observation::first(&wip)))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_env_step,
    bench_nn,
    bench_ddpg,
    bench_allocators
);
criterion_main!(benches);
