//! Bounded retry with exponential backoff for the serving I/O paths.
//!
//! Socket accepts, socket reads and checkpoint-watcher filesystem probes
//! all share the same discipline: a transient failure is retried a bounded
//! number of times with exponentially growing sleeps, and exhaustion
//! surfaces as a *typed* error ([`RetryExhausted`]) rather than a silent
//! hang or an untyped string. Backoff sleeps are observability-only — they
//! never appear in decision records, so retries cannot perturb the
//! byte-determinism proofs.

use std::fmt;
use std::io;
use std::time::Duration;

/// Bounded exponential backoff: `attempts` tries, sleeping
/// `base * 2^k` (capped at `max`) between consecutive tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); 1 means "no retry".
    pub attempts: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(1),
            max: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry number `k` (0-based), exponentially doubled
    /// from `base` and capped at `max`.
    #[must_use]
    pub fn backoff(&self, k: u32) -> Duration {
        let factor = 1u32.checked_shl(k).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.max)
    }
}

/// A retried operation ran out of attempts; carries the operation label and
/// the final underlying error.
#[derive(Debug)]
pub struct RetryExhausted<E> {
    /// Stable label of the operation (`"accept"`, `"client_read"`,
    /// `"watcher_fingerprint"`).
    pub op: &'static str,
    /// How many attempts were made.
    pub attempts: u32,
    /// The error the final attempt produced.
    pub last: E,
}

impl<E: fmt::Display> fmt::Display for RetryExhausted<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed after {} attempts: {}",
            self.op, self.attempts, self.last
        )
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for RetryExhausted<E> {}

/// Whether an I/O error is worth retrying: interruptions, timeouts, and
/// transient connection teardown seen during accept.
#[must_use]
pub fn io_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
    )
}

/// Runs `f` under `policy`, retrying while `transient(&err)` holds.
///
/// Returns the first success, the first *non-transient* error (wrapped with
/// `attempts` = tries so far), or [`RetryExhausted`] with the last transient
/// error once attempts run out. `on_retry(k)` is called before each sleep —
/// the hook the serving loop uses to count `serve.retries`.
///
/// # Errors
///
/// [`RetryExhausted`] as described above.
pub fn retry_with<T, E>(
    policy: RetryPolicy,
    op: &'static str,
    transient: impl Fn(&E) -> bool,
    mut on_retry: impl FnMut(u32),
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, RetryExhausted<E>> {
    let attempts = policy.attempts.max(1);
    let mut k = 0;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if k + 1 < attempts && transient(&e) => {
                on_retry(k);
                std::thread::sleep(policy.backoff(k));
                k += 1;
            }
            Err(e) => {
                return Err(RetryExhausted {
                    op,
                    attempts: k + 1,
                    last: e,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let mut retries = 0;
        let result = retry_with(
            RetryPolicy {
                attempts: 5,
                base: Duration::from_micros(1),
                max: Duration::from_micros(8),
            },
            "test",
            |_: &io::Error| true,
            |_| retries += 1,
            || {
                calls += 1;
                if calls < 3 {
                    Err(io::Error::new(io::ErrorKind::TimedOut, "later"))
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhaustion_is_typed_with_attempt_count() {
        let err = retry_with(
            RetryPolicy {
                attempts: 3,
                base: Duration::from_micros(1),
                max: Duration::from_micros(2),
            },
            "client_read",
            |_: &io::Error| true,
            |_| {},
            || Err::<(), _>(io::Error::new(io::ErrorKind::TimedOut, "stuck")),
        )
        .expect_err("must exhaust");
        assert_eq!(err.attempts, 3);
        assert_eq!(err.op, "client_read");
        assert!(err.to_string().contains("after 3 attempts"), "{err}");
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let mut calls = 0;
        let err = retry_with(
            RetryPolicy::default(),
            "accept",
            io_transient,
            |_| {},
            || {
                calls += 1;
                Err::<(), _>(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
            },
        )
        .expect_err("must fail");
        assert_eq!(calls, 1, "non-transient error is not retried");
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(1),
            max: Duration::from_millis(5),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(5), "capped");
        assert_eq!(p.backoff(31), Duration::from_millis(5));
        assert_eq!(
            p.backoff(63),
            Duration::from_millis(5),
            "shift overflow safe"
        );
    }
}
