//! Checkpoint hot-swap: watch a path, load new policies between windows.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use baselines::{AllocatorPolicy, Policy};
use miras_core::{CheckpointError, CheckpointPayload, MirasAgent};

/// Why a checkpoint could not be turned into a policy.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file parses as neither a full checkpoint nor a raw agent.
    Unusable {
        /// What the checkpoint loader said.
        checkpoint: String,
        /// What the raw-agent parser said.
        agent: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read policy file: {e}"),
            LoadError::Unusable { checkpoint, agent } => write!(
                f,
                "file is neither a checkpoint ({checkpoint}) nor a raw agent ({agent})"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads a deployable policy from `path`.
///
/// Accepts either a full PR-3 training checkpoint (the deployable agent is
/// extracted and the policy is versioned with the checkpoint's iteration)
/// or a raw serialized [`MirasAgent`] (as cached under `bench_artifacts/`;
/// versioned 0). Returns the boxed policy and its version.
///
/// # Errors
///
/// [`LoadError::Io`] if the file cannot be read, [`LoadError::Unusable`]
/// if it parses as neither format.
pub fn load_policy(path: &Path) -> Result<(Box<dyn Policy>, u64), LoadError> {
    let checkpoint_err = match CheckpointPayload::load(path) {
        Ok(payload) => {
            let version = payload.iteration() as u64;
            let agent = payload.deployable_agent();
            return Ok((
                Box::new(AllocatorPolicy::new(agent).with_version(version)),
                version,
            ));
        }
        Err(CheckpointError::Io(e)) => return Err(LoadError::Io(e)),
        Err(e) => e.to_string(),
    };
    let json = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    match serde_json::from_str::<MirasAgent>(&json) {
        Ok(agent) => Ok((Box::new(AllocatorPolicy::new(agent)), 0)),
        Err(e) => Err(LoadError::Unusable {
            checkpoint: checkpoint_err,
            agent: e.to_string(),
        }),
    }
}

/// Watches a checkpoint path for changes between decision windows.
///
/// The serve loop is single-threaded by design: the watcher is polled at
/// the window boundary (never mid-decision), so a swap can never drop or
/// tear a request — the Nth decision comes entirely from the old policy or
/// entirely from the new one. Change detection is by `(mtime, len)`
/// fingerprint; the PR-3 checkpoint writer is atomic (temp + fsync +
/// rename), so a changed fingerprint always points at a complete file.
///
/// A file that appears but fails to load (e.g. hand-corrupted) is reported
/// once via [`SwapOutcome::Failed`] and not retried until its fingerprint
/// changes again; the service keeps the old policy, which is the safe
/// behaviour for a live control loop.
#[derive(Debug)]
pub struct CheckpointWatcher {
    path: PathBuf,
    fingerprint: Option<(SystemTime, u64)>,
}

/// What a watcher poll produced.
pub enum SwapOutcome {
    /// A new checkpoint loaded cleanly.
    Swapped {
        /// The freshly loaded policy.
        policy: Box<dyn Policy>,
        /// Its version (checkpoint iteration, or 0 for raw agents).
        version: u64,
    },
    /// The path changed but could not be loaded; the old policy stays.
    Failed(LoadError),
}

impl CheckpointWatcher {
    /// Watches `path`. The file need not exist yet; the first poll after it
    /// appears performs the initial load.
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        CheckpointWatcher {
            path,
            fingerprint: None,
        }
    }

    /// Watches `path`, treating the currently present file as already
    /// deployed (only *subsequent* changes trigger swaps). Used when the
    /// service loads its initial policy from the same path at startup.
    #[must_use]
    pub fn new_deployed(path: PathBuf) -> Self {
        let fingerprint = Self::read_fingerprint(&path);
        CheckpointWatcher { path, fingerprint }
    }

    /// The watched path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_fingerprint(path: &Path) -> Option<(SystemTime, u64)> {
        let meta = std::fs::metadata(path).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    }

    /// Checks the path; `None` means no change since the last poll.
    pub fn poll(&mut self) -> Option<SwapOutcome> {
        let current = Self::read_fingerprint(&self.path)?;
        if self.fingerprint == Some(current) {
            return None;
        }
        self.fingerprint = Some(current);
        match load_policy(&self.path) {
            Ok((policy, version)) => Some(SwapOutcome::Swapped { policy, version }),
            Err(e) => Some(SwapOutcome::Failed(e)),
        }
    }
}
