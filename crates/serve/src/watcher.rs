//! Checkpoint hot-swap: watch a path, load new policies between windows.

use std::fmt;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use baselines::{AllocatorPolicy, Policy};
use miras_core::{CheckpointError, CheckpointPayload, MirasAgent};

use crate::retry::{io_transient, retry_with, RetryPolicy};

/// Why a checkpoint could not be turned into a policy.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file could not be read even after bounded retry of a transient
    /// failure.
    RetryExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error.
        last: std::io::Error,
    },
    /// The file parses as neither a full checkpoint nor a raw agent.
    Unusable {
        /// What the checkpoint loader said.
        checkpoint: String,
        /// What the raw-agent parser said.
        agent: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read policy file: {e}"),
            LoadError::RetryExhausted { attempts, last } => write!(
                f,
                "cannot read policy file after {attempts} attempts: {last}"
            ),
            LoadError::Unusable { checkpoint, agent } => write!(
                f,
                "file is neither a checkpoint ({checkpoint}) nor a raw agent ({agent})"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads a deployable policy from `path`.
///
/// Accepts either a full PR-3 training checkpoint (the deployable agent is
/// extracted and the policy is versioned with the checkpoint's iteration)
/// or a raw serialized [`MirasAgent`] (as cached under `bench_artifacts/`;
/// versioned 0). Returns the boxed policy and its version.
///
/// # Errors
///
/// [`LoadError::Io`] if the file cannot be read, [`LoadError::Unusable`]
/// if it parses as neither format.
pub fn load_policy(path: &Path) -> Result<(Box<dyn Policy>, u64), LoadError> {
    let checkpoint_err = match CheckpointPayload::load(path) {
        Ok(payload) => {
            let version = payload.iteration() as u64;
            let agent = payload.deployable_agent();
            return Ok((
                Box::new(AllocatorPolicy::new(agent).with_version(version)),
                version,
            ));
        }
        Err(CheckpointError::Io(e)) => return Err(LoadError::Io(e)),
        Err(e) => e.to_string(),
    };
    let json = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    match serde_json::from_str::<MirasAgent>(&json) {
        Ok(agent) => Ok((Box::new(AllocatorPolicy::new(agent)), 0)),
        Err(e) => Err(LoadError::Unusable {
            checkpoint: checkpoint_err,
            agent: e.to_string(),
        }),
    }
}

/// Change-detection fingerprint: `(mtime, len, content checksum)`.
///
/// The checksum (FNV-1a over the file bytes) closes the classic
/// `(mtime, len)` race: a rewrite that lands within the filesystem's mtime
/// granularity *and* happens to produce the same byte length — entirely
/// plausible for fixed-schema checkpoints written twice in quick
/// succession — is still detected, because the bytes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    mtime: SystemTime,
    len: u64,
    checksum: u64,
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and stable across
/// platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Watches a checkpoint path for changes between decision windows.
///
/// The serve loop is single-threaded by design: the watcher is polled at
/// the window boundary (never mid-decision), so a swap can never drop or
/// tear a request — the Nth decision comes entirely from the old policy or
/// entirely from the new one. Change detection is by
/// `(mtime, len, content checksum)` fingerprint (see [`Fingerprint`]); the
/// PR-3 checkpoint writer is atomic (temp + fsync + rename), so a changed
/// fingerprint always points at a complete file. Length and checksum are
/// computed from one open file handle, so a rename racing the probe yields
/// a self-consistent fingerprint of one version or the other — never a mix.
///
/// A file that appears but fails to load (e.g. hand-corrupted) is reported
/// once via [`SwapOutcome::Failed`] and not retried until its fingerprint
/// changes again; the service keeps the old policy, which is the safe
/// behaviour for a live control loop. Transient probe failures are retried
/// with bounded exponential backoff ([`RetryPolicy`]); the retry count is
/// surfaced through [`CheckpointWatcher::take_retries`] so the service can
/// fold it into the `serve.retries` counter.
#[derive(Debug)]
pub struct CheckpointWatcher {
    path: PathBuf,
    fingerprint: Option<Fingerprint>,
    retry: RetryPolicy,
    retries: u64,
}

/// What a watcher poll produced.
pub enum SwapOutcome {
    /// A new checkpoint loaded cleanly.
    Swapped {
        /// The freshly loaded policy.
        policy: Box<dyn Policy>,
        /// Its version (checkpoint iteration, or 0 for raw agents).
        version: u64,
    },
    /// The path changed but could not be loaded; the old policy stays.
    Failed(LoadError),
}

impl CheckpointWatcher {
    /// Watches `path`. The file need not exist yet; the first poll after it
    /// appears performs the initial load.
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        CheckpointWatcher {
            path,
            fingerprint: None,
            retry: RetryPolicy::default(),
            retries: 0,
        }
    }

    /// Watches `path`, treating the currently present file as already
    /// deployed (only *subsequent* changes trigger swaps). Used when the
    /// service loads its initial policy from the same path at startup.
    #[must_use]
    pub fn new_deployed(path: PathBuf) -> Self {
        let fingerprint = Self::probe(&path).ok().flatten();
        CheckpointWatcher {
            path,
            fingerprint,
            retry: RetryPolicy::default(),
            retries: 0,
        }
    }

    /// Overrides the transient-failure retry policy for filesystem probes.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The watched path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drains the count of transient-probe retries performed since the last
    /// call (the service folds this into `serve.retries`).
    pub fn take_retries(&mut self) -> u64 {
        std::mem::take(&mut self.retries)
    }

    /// One probe: open, stat (same handle, so mtime/len/bytes are the same
    /// inode even mid-rename), read, checksum. `Ok(None)` when the file
    /// does not exist.
    fn probe(path: &Path) -> std::io::Result<Option<Fingerprint>> {
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let meta = file.metadata()?;
        let mut bytes = Vec::with_capacity(usize::try_from(meta.len()).unwrap_or(0));
        file.read_to_end(&mut bytes)?;
        Ok(Some(Fingerprint {
            mtime: meta.modified()?,
            len: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
        }))
    }

    /// Checks the path; `None` means no change since the last poll (or the
    /// probe failed transiently even after retry — the next window polls
    /// again, so a flaky filesystem delays a swap rather than killing it).
    pub fn poll(&mut self) -> Option<SwapOutcome> {
        let retries = &mut self.retries;
        let probed = retry_with(
            self.retry,
            "watcher_fingerprint",
            io_transient,
            |_| *retries += 1,
            || Self::probe(&self.path),
        );
        let current = match probed {
            Ok(Some(fp)) => fp,
            Ok(None) => return None,
            Err(exhausted) => {
                // Leave the stored fingerprint alone: when the filesystem
                // recovers, the change (if any) is still detected.
                return Some(SwapOutcome::Failed(LoadError::RetryExhausted {
                    attempts: exhausted.attempts,
                    last: exhausted.last,
                }));
            }
        };
        if self.fingerprint == Some(current) {
            return None;
        }
        self.fingerprint = Some(current);
        match load_policy(&self.path) {
            Ok((policy, version)) => Some(SwapOutcome::Swapped { policy, version }),
            Err(e) => Some(SwapOutcome::Failed(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn probe_distinguishes_same_length_content() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("miras_watch_probe_{}.json", std::process::id()));
        std::fs::write(&path, b"AAAA").unwrap();
        let a = CheckpointWatcher::probe(&path).unwrap().unwrap();
        std::fs::write(&path, b"BBBB").unwrap();
        let b = CheckpointWatcher::probe(&path).unwrap().unwrap();
        assert_eq!(a.len, b.len);
        assert_ne!(a.checksum, b.checksum, "same length, different bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn probe_of_missing_file_is_none_not_error() {
        let path = std::env::temp_dir().join("miras_watch_probe_never_exists.json");
        assert!(CheckpointWatcher::probe(&path).unwrap().is_none());
    }
}
