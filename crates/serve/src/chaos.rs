//! Seeded chaos harness for the serving path.
//!
//! The harness separates *what goes wrong* from *when it goes wrong*: a
//! [`ChaosConfig`] (seed + fault rates) expands a clean observation stream
//! into a [`ChaosSchedule`] — an explicit, replayable sequence of
//! deliveries, malformed lines, disconnects, stalls, queue pops and
//! checkpoint corruption — and [`run_schedule`] executes that sequence
//! single-threaded against the *production* components
//! ([`AdmissionQueue`], [`DecisionService`]). Because the schedule fixes
//! the interleaving, every run of a given seed is byte-identical, which
//! turns "no panic under chaos" and "exactly one reply per admitted
//! window" from flaky observations into deterministic properties.
//!
//! The threaded server exercises the same components under real
//! concurrency (see `tests/overload.rs`); the chaos executor is the piece
//! that makes failure schedules *reproducible*.

use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::admission::{AdmissionConfig, AdmissionQueue, CountersSnapshot, PushOutcome};
use crate::service::DecisionService;
use crate::wire::{parse_observation_line, DecisionRecord};

/// SplitMix64 — tiny, seedable, excellent diffusion; enough for fault
/// scheduling and keeps `serve` free of the `rand` dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n >= 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }
}

/// Chaos fault mix: a seed plus per-event fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Schedule seed — same seed, same schedule, same bytes out.
    pub seed: u64,
    /// Simulated concurrent clients the stream is sharded over.
    pub clients: usize,
    /// Probability of injecting a malformed line before a delivery.
    pub malformed: f64,
    /// Probability a delivery is followed by that client disconnecting.
    pub disconnect: f64,
    /// Probability of stalling the next decision past any deadline.
    pub stall: f64,
    /// Probability of corrupting (and later restoring) the watched
    /// checkpoint between deliveries.
    pub corrupt: f64,
    /// Average deliveries per queue pop; > 1 creates standing overload so
    /// admission control actually sheds.
    pub burst: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            clients: 2,
            malformed: 0.08,
            disconnect: 0.03,
            stall: 0.05,
            corrupt: 0.03,
            burst: 3,
        }
    }
}

impl ChaosConfig {
    /// Parses a `--chaos` spec: comma-separated `key=value` pairs over the
    /// defaults, e.g. `seed=42,malformed=0.2,clients=4,burst=5`.
    ///
    /// # Errors
    ///
    /// A description of the first unparseable pair.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut config = ChaosConfig::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec pair '{pair}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| format!("chaos spec {key}={value}: {e}");
            match key {
                "seed" => config.seed = value.parse().map_err(|e| bad(&e))?,
                "clients" => config.clients = value.parse().map_err(|e| bad(&e))?,
                "malformed" => config.malformed = value.parse().map_err(|e| bad(&e))?,
                "disconnect" => config.disconnect = value.parse().map_err(|e| bad(&e))?,
                "stall" => config.stall = value.parse().map_err(|e| bad(&e))?,
                "corrupt" => config.corrupt = value.parse().map_err(|e| bad(&e))?,
                "burst" => config.burst = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        config.clients = config.clients.max(1);
        config.burst = config.burst.max(1);
        Ok(config)
    }

    /// A fault-free configuration (used by the chaos-off control run that
    /// must reproduce batch replay byte-for-byte).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            clients: 1,
            malformed: 0.0,
            disconnect: 0.0,
            stall: 0.0,
            corrupt: 0.0,
            burst: 1,
        }
    }
}

/// One step of a chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// A client delivers one raw wire line (possibly malformed).
    Deliver {
        /// Simulated client id.
        client: usize,
        /// The raw line, newline-free.
        line: String,
    },
    /// A client drops its connection; later replies to it are undeliverable.
    Disconnect {
        /// Simulated client id.
        client: usize,
    },
    /// The next decision's effective latency gains this stall
    /// (accounting-only — deterministic deadline misses, no real sleep).
    Stall {
        /// Injected stall in microseconds.
        micros: u64,
    },
    /// The decision thread pops and decides one admitted window.
    Pop,
    /// The watched checkpoint file is overwritten with garbage
    /// (mid-hot-swap corruption).
    CorruptCheckpoint,
    /// The watched checkpoint file is restored to its original bytes.
    RestoreCheckpoint,
}

/// A fully expanded, replayable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The configuration that generated it.
    pub config: ChaosConfig,
    /// The event sequence.
    pub events: Vec<ChaosEvent>,
}

/// The malformed-line corpus: every wire-rejection class the parser knows.
/// `max_line_bytes` is the service's per-line bound; the oversized entry
/// exceeds it by one byte.
#[must_use]
pub fn malformed_corpus(max_line_bytes: usize) -> Vec<String> {
    vec![
        "this is not json".to_string(),
        "{\"window\":1,\"wip\":[1.0".to_string(), // truncated mid-list
        "{\"window\":true}".to_string(),          // wrong types
        "{}".to_string(),                         // missing fields
        "{\"window\":2,\"wip\":[1.0,\"x\"]}".to_string(),
        // 1e999 parses to +inf: valid JSON, non-finite WIP.
        "{\"window\":3,\"wip\":[1e999,1.0,1.0,1.0]}".to_string(),
        "\u{fffd}\u{0}binary\u{1}garbage".to_string(),
        "x".repeat(max_line_bytes + 1),
        "[1,2,3]".to_string(), // valid JSON, wrong shape
    ]
}

/// Expands `base_lines` (a clean JSONL observation stream, one line per
/// window) into a seeded fault schedule per `config`.
#[must_use]
pub fn generate_schedule(
    config: &ChaosConfig,
    base_lines: &[String],
    max_line_bytes: usize,
) -> ChaosSchedule {
    let mut rng = SplitMix64::new(config.seed);
    let corpus = malformed_corpus(max_line_bytes);
    let mut events = Vec::with_capacity(base_lines.len() * 2);
    let mut since_pop = 0usize;
    for line in base_lines {
        let client = rng.below(config.clients as u64) as usize;
        if rng.chance(config.malformed) {
            let bad = corpus[rng.below(corpus.len() as u64) as usize].clone();
            events.push(ChaosEvent::Deliver {
                client: rng.below(config.clients as u64) as usize,
                line: bad,
            });
        }
        if rng.chance(config.corrupt) {
            events.push(ChaosEvent::CorruptCheckpoint);
        }
        if rng.chance(config.stall) {
            events.push(ChaosEvent::Stall {
                micros: 1_000_000 + rng.below(1_000_000),
            });
        }
        events.push(ChaosEvent::Deliver {
            client,
            line: line.clone(),
        });
        since_pop += 1;
        // Pop on average once per `burst` deliveries, so the queue runs hot
        // and admission control has something to do.
        if since_pop >= config.burst || rng.chance(1.0 / config.burst as f64) {
            events.push(ChaosEvent::Pop);
            since_pop = 0;
        }
        if rng.chance(config.corrupt) {
            events.push(ChaosEvent::RestoreCheckpoint);
        }
        if rng.chance(config.disconnect) {
            events.push(ChaosEvent::Disconnect {
                client: rng.below(config.clients as u64) as usize,
            });
        }
    }
    // Always end restored, so the next run of the same checkpoint starts
    // from the same bytes.
    if events.contains(&ChaosEvent::CorruptCheckpoint) {
        events.push(ChaosEvent::RestoreCheckpoint);
    }
    ChaosSchedule {
        config: *config,
        events,
    }
}

/// One reply the executor produced (or failed to deliver).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReply {
    /// The client it was addressed to.
    pub client: usize,
    /// The wire record.
    pub record: DecisionRecord,
    /// Whether the client was still connected (false = counted under
    /// `dropped_replies`).
    pub delivered: bool,
}

/// Everything a chaos run produced, for invariant checking and
/// byte-determinism comparison.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Every reply in execution order, including undeliverable ones.
    pub replies: Vec<ChaosReply>,
    /// Valid observations delivered by still-connected clients (admitted
    /// or shed — each must map to exactly one reply).
    pub delivered_valid: u64,
    /// Malformed/oversized/bad-dims lines delivered by still-connected
    /// clients.
    pub delivered_rejected: u64,
    /// Final overload counters.
    pub counters: CountersSnapshot,
    /// Hot-swaps that succeeded during the run.
    pub swaps: u64,
}

impl ChaosOutcome {
    /// The delivered wire bytes per client — the object of the
    /// byte-determinism property.
    #[must_use]
    pub fn transcript(&self, clients: usize) -> Vec<String> {
        let mut out = vec![String::new(); clients];
        for reply in &self.replies {
            if reply.delivered {
                out[reply.client].push_str(&reply.record.to_line());
                out[reply.client].push('\n');
            }
        }
        out
    }

    /// Replies that carried allocations (normal + degraded).
    #[must_use]
    pub fn decisions(&self) -> usize {
        self.replies
            .iter()
            .filter(|r| r.record.is_actionable())
            .count()
    }
}

/// Executes a schedule against a service, single-threaded, reusing the
/// production [`AdmissionQueue`]. `checkpoint` is the watched checkpoint
/// path for corruption events (pass the path the service's watcher
/// watches; `None` if the schedule has no corruption events or no watcher
/// is attached).
///
/// After the last event the queue is drained — graceful shutdown: every
/// admitted window is decided and answered (or counted dropped if its
/// client disconnected).
#[must_use]
pub fn run_schedule(
    service: &mut DecisionService,
    admission: AdmissionConfig,
    schedule: &ChaosSchedule,
    checkpoint: Option<&Path>,
) -> ChaosOutcome {
    let queue: AdmissionQueue<(usize, crate::wire::WindowObservation)> =
        AdmissionQueue::new(admission);
    let clients = schedule.config.clients.max(1);
    let mut alive = vec![true; clients];
    let mut replies = Vec::new();
    let mut delivered_valid = 0u64;
    let mut delivered_rejected = 0u64;
    let mut lineno = 0usize;
    let original: Option<(PathBuf, Vec<u8>)> =
        checkpoint.and_then(|p| std::fs::read(p).ok().map(|bytes| (p.to_path_buf(), bytes)));

    fn reply(
        service: &mut DecisionService,
        replies: &mut Vec<ChaosReply>,
        client: usize,
        record: DecisionRecord,
        alive: &[bool],
    ) {
        let delivered = alive[client];
        if !delivered {
            // Mirror the threaded server: an undeliverable reply is
            // counted, never fatal.
            crate::admission::ServeCounters::bump(
                &service.counters().dropped_replies,
                1,
                &service.telemetry(),
                "serve.dropped_replies",
            );
        }
        replies.push(ChaosReply {
            client,
            record,
            delivered,
        });
    }

    fn pop_one(
        queue: &AdmissionQueue<(usize, crate::wire::WindowObservation)>,
        service: &mut DecisionService,
        replies: &mut Vec<ChaosReply>,
        alive: &[bool],
    ) {
        if let Some((client, obs)) = queue.try_pop() {
            let record = service.handle(&obs);
            reply(service, replies, client, record, alive);
        }
    }

    for event in &schedule.events {
        match event {
            ChaosEvent::Deliver { client, line } => {
                let client = *client % clients;
                if !alive[client] {
                    continue;
                }
                lineno += 1;
                match parse_observation_line(
                    line,
                    service.max_line_bytes(),
                    service.expected_dims(),
                ) {
                    Ok(Some(obs)) => {
                        delivered_valid += 1;
                        let window = obs.window;
                        match queue.push((client, obs)) {
                            PushOutcome::Admitted => {}
                            PushOutcome::ShedNew => {
                                let record = service.shed_reply(window);
                                reply(service, &mut replies, client, record, &alive);
                            }
                            PushOutcome::ShedOldest((victim_client, victim_obs)) => {
                                let record = service.shed_reply(victim_obs.window);
                                reply(service, &mut replies, victim_client, record, &alive);
                            }
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        delivered_rejected += 1;
                        service.note_wire_rejected(lineno, &e);
                    }
                }
            }
            ChaosEvent::Disconnect { client } => {
                let client = *client % clients;
                if alive[client] {
                    alive[client] = false;
                    crate::admission::ServeCounters::bump(
                        &service.counters().disconnects,
                        1,
                        &service.telemetry(),
                        "serve.disconnects",
                    );
                }
            }
            ChaosEvent::Stall { micros } => {
                service.inject_stall(Duration::from_micros(*micros));
            }
            ChaosEvent::Pop => pop_one(&queue, service, &mut replies, &alive),
            ChaosEvent::CorruptCheckpoint => {
                if let Some((path, _)) = &original {
                    let _ = std::fs::write(path, b"{\"corrupt\":tru");
                }
            }
            ChaosEvent::RestoreCheckpoint => {
                if let Some((path, bytes)) = &original {
                    let _ = std::fs::write(path, bytes);
                }
            }
        }
    }
    // Graceful shutdown: decide everything admitted.
    while !queue.is_empty() {
        pop_one(&queue, service, &mut replies, &alive);
    }
    // Leave the checkpoint as we found it even if the schedule ended
    // mid-corruption.
    if let Some((path, bytes)) = &original {
        let _ = std::fs::write(path, bytes);
    }
    ChaosOutcome {
        replies,
        delivered_valid,
        delivered_rejected,
        counters: service.counters().snapshot(),
        swaps: service.swaps(),
    }
}

/// Checks the chaos invariants on a completed run:
///
/// 1. **Exactly one reply per delivered valid window** — admitted or shed,
///    delivered or dropped, nothing unanswered and nothing answered twice.
/// 2. **Every rejected line is counted** — `wire_rejected` matches the
///    malformed deliveries that reached a connected client.
/// 3. **Counter coherence** — shed/degraded counters match the reply
///    stream; dropped replies match the disconnect bookkeeping.
/// 4. **Shed replies are inert** — no allocations, never `degraded`.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn verify(outcome: &ChaosOutcome) -> Result<(), String> {
    let total_replies = outcome.replies.len() as u64;
    if total_replies != outcome.delivered_valid {
        return Err(format!(
            "reply conservation violated: {} valid windows delivered but {} replies produced",
            outcome.delivered_valid, total_replies
        ));
    }
    if outcome.counters.wire_rejected != outcome.delivered_rejected {
        return Err(format!(
            "wire_rejected counter {} != {} rejected lines delivered",
            outcome.counters.wire_rejected, outcome.delivered_rejected
        ));
    }
    let shed_replies = outcome
        .replies
        .iter()
        .filter(|r| !r.record.is_actionable())
        .count() as u64;
    if outcome.counters.shed != shed_replies {
        return Err(format!(
            "shed counter {} != {} shed replies",
            outcome.counters.shed, shed_replies
        ));
    }
    let degraded_replies = outcome.replies.iter().filter(|r| r.record.degraded).count() as u64;
    if outcome.counters.degraded != degraded_replies {
        return Err(format!(
            "degraded counter {} != {} degraded replies",
            outcome.counters.degraded, degraded_replies
        ));
    }
    let undelivered = outcome.replies.iter().filter(|r| !r.delivered).count() as u64;
    if outcome.counters.dropped_replies != undelivered {
        return Err(format!(
            "dropped_replies counter {} != {} undelivered replies",
            outcome.counters.dropped_replies, undelivered
        ));
    }
    for r in &outcome.replies {
        if !r.record.is_actionable() {
            if !r.record.allocations.is_empty() || r.record.degraded {
                return Err(format!(
                    "shed reply for window {} carries allocations or degraded flag",
                    r.record.window
                ));
            }
        } else if r.record.allocations.is_empty() {
            return Err(format!(
                "actionable reply for window {} has no allocations",
                r.record.window
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_diffuse() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64(), "adjacent seeds diverge immediately");
        let u = SplitMix64::new(3).unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn spec_parses_and_rejects() {
        let c = ChaosConfig::from_spec("seed=42,malformed=0.5,clients=4,burst=5").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.clients, 4);
        assert_eq!(c.burst, 5);
        assert!((c.malformed - 0.5).abs() < 1e-12);
        assert!(ChaosConfig::from_spec("seed").is_err());
        assert!(ChaosConfig::from_spec("frobnicate=1").is_err());
        assert!(ChaosConfig::from_spec("seed=notanumber").is_err());
        let d = ChaosConfig::from_spec("").unwrap();
        assert_eq!(d, ChaosConfig::default());
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_schedule() {
        let lines: Vec<String> = (0..20)
            .map(|w| format!("{{\"window\":{w},\"wip\":[1.0,2.0,3.0,4.0]}}"))
            .collect();
        let config = ChaosConfig {
            seed: 11,
            ..ChaosConfig::default()
        };
        let a = generate_schedule(&config, &lines, 4096);
        let b = generate_schedule(&config, &lines, 4096);
        assert_eq!(a, b);
        let other = generate_schedule(&ChaosConfig { seed: 12, ..config }, &lines, 4096);
        assert_ne!(a, other);
    }

    #[test]
    fn quiet_schedule_is_pure_lockstep() {
        let lines: Vec<String> = (0..5)
            .map(|w| format!("{{\"window\":{w},\"wip\":[1.0,1.0,1.0,1.0]}}"))
            .collect();
        let schedule = generate_schedule(&ChaosConfig::quiet(1), &lines, 4096);
        // Strict Deliver/Pop alternation: no faults, no overload.
        assert_eq!(schedule.events.len(), 10);
        for (i, event) in schedule.events.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(event, ChaosEvent::Deliver { client: 0, .. }));
            } else {
                assert!(matches!(event, ChaosEvent::Pop));
            }
        }
    }

    #[test]
    fn corpus_covers_every_rejection_kind() {
        let corpus = malformed_corpus(64);
        let kinds: std::collections::BTreeSet<&'static str> = corpus
            .iter()
            .filter_map(|line| parse_observation_line(line, 64, Some(4)).err())
            .map(|e| e.kind())
            .collect();
        for want in ["parse", "oversized", "non_finite"] {
            assert!(
                kinds.contains(want),
                "corpus missing kind {want}: {kinds:?}"
            );
        }
    }
}
