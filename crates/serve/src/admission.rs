//! Admission control: a bounded inbound queue between client readers and
//! the single decision thread, with configurable load shedding.
//!
//! The serving loop stays single-threaded for decisions (that is what makes
//! hot-swap atomic and output deterministic); concurrency lives entirely on
//! the ingestion side. Every parsed observation passes through one
//! [`AdmissionQueue`]. When the queue is at `max_inflight`, the configured
//! [`ShedPolicy`] decides who loses:
//!
//! * [`ShedPolicy::Reject`] — the *new* window is refused; the client gets
//!   an immediate `status: "shed"` reply. Protects admitted work; fair
//!   under sustained overload.
//! * [`ShedPolicy::DropOldest`] — the *oldest queued* window is evicted
//!   (its client gets the shed reply) and the new one admitted. Keeps the
//!   queue fresh, which suits a control loop where a stale WIP observation
//!   is worth less than a current one.
//!
//! Either way the outcome is a typed, immediately-answered reply — never a
//! blocked client, never silent loss. The queue is a plain
//! `Mutex + Condvar` structure: outcomes are a pure function of the
//! *sequence* of push/pop operations, which is what the chaos harness's
//! determinism proof replays (see [`crate::chaos`]).

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// What to do with a window that arrives while the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the newly arrived window (default).
    #[default]
    Reject,
    /// Evict the oldest queued window and admit the new one.
    DropOldest,
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::DropOldest => "drop-oldest",
        })
    }
}

impl FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" => Ok(ShedPolicy::Reject),
            "drop-oldest" => Ok(ShedPolicy::DropOldest),
            other => Err(format!(
                "unknown shed policy '{other}' (reject or drop-oldest)"
            )),
        }
    }
}

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum admitted-but-undecided windows across all clients (>= 1).
    pub max_inflight: usize,
    /// What happens to the overflow.
    pub shed: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 64,
            shed: ShedPolicy::Reject,
        }
    }
}

/// What [`AdmissionQueue::push`] did with a window.
#[derive(Debug)]
pub enum PushOutcome<T> {
    /// The window was admitted; the decision thread will answer it.
    Admitted,
    /// The queue was full under [`ShedPolicy::Reject`]: the new window was
    /// refused and must get a shed reply.
    ShedNew,
    /// The queue was full under [`ShedPolicy::DropOldest`]: the new window
    /// was admitted and the returned oldest entry was evicted; *it* must
    /// get the shed reply.
    ShedOldest(T),
}

struct QueueState<T> {
    entries: VecDeque<T>,
    closed: bool,
}

/// The bounded inbound queue. `T` is the entry payload — the server uses
/// `(client handle, observation)`, the chaos harness `(client id,
/// observation)`.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    config: AdmissionConfig,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue; `max_inflight` is clamped to at least 1.
    #[must_use]
    pub fn new(mut config: AdmissionConfig) -> Self {
        config.max_inflight = config.max_inflight.max(1);
        AdmissionQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            config,
        }
    }

    /// The active configuration (after clamping).
    #[must_use]
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Offers one window. Never blocks: a full queue sheds per the policy.
    /// Pushing to a closed queue sheds the new entry (the server is
    /// draining for shutdown; late windows get a typed refusal, not
    /// silence).
    pub fn push(&self, entry: T) -> PushOutcome<T> {
        let mut state = self.lock();
        if state.closed {
            return PushOutcome::ShedNew;
        }
        if state.entries.len() < self.config.max_inflight {
            state.entries.push_back(entry);
            drop(state);
            self.ready.notify_one();
            return PushOutcome::Admitted;
        }
        match self.config.shed {
            ShedPolicy::Reject => PushOutcome::ShedNew,
            ShedPolicy::DropOldest => {
                let victim = state
                    .entries
                    .pop_front()
                    .expect("full queue has a front entry");
                state.entries.push_back(entry);
                drop(state);
                self.ready.notify_one();
                PushOutcome::ShedOldest(victim)
            }
        }
    }

    /// Blocks until an entry is available or the queue is closed *and*
    /// drained; `None` means no entry will ever come again. After close,
    /// queued entries are still handed out — graceful shutdown decides
    /// every admitted window before exit.
    pub fn pop_wait(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(entry) = state.entries.pop_front() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking pop (the deterministic chaos executor's primitive).
    pub fn try_pop(&self) -> Option<T> {
        self.lock().entries.pop_front()
    }

    /// Closes the queue: future pushes shed, and poppers drain what remains
    /// then observe the end of the stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Admitted-but-undecided windows right now.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared overload/robustness counters, readable from every serving thread
/// and published into telemetry by [`crate::DecisionService::finish`].
///
/// Kept separate from the [`telemetry`] recorder so invariant checks and
/// end-of-run reports can read exact values without a scrape round-trip.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Windows refused by admission control.
    pub shed: AtomicU64,
    /// Windows answered by the fallback policy after a deadline miss.
    pub degraded: AtomicU64,
    /// Input lines rejected by the wire layer (malformed/oversized/bad
    /// dims).
    pub wire_rejected: AtomicU64,
    /// Transient-failure retries across socket and watcher I/O.
    pub retries: AtomicU64,
    /// Client connections that ended with a read/write error rather than a
    /// clean EOF.
    pub disconnects: AtomicU64,
    /// Decisions whose reply could not be delivered (client gone).
    pub dropped_replies: AtomicU64,
}

impl ServeCounters {
    /// Adds `n` to a counter and mirrors the increment into `telemetry`
    /// under `name`.
    pub fn bump(counter: &AtomicU64, n: u64, telemetry: &telemetry::Telemetry, name: &'static str) {
        counter.fetch_add(n, Ordering::Relaxed);
        telemetry.counter(name, n);
    }

    /// Point-in-time snapshot as plain integers.
    #[must_use]
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            wire_rejected: self.wire_rejected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            dropped_replies: self.dropped_replies.load(Ordering::Relaxed),
        }
    }
}

/// Plain-integer snapshot of [`ServeCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Windows refused by admission control.
    pub shed: u64,
    /// Windows answered by the fallback policy.
    pub degraded: u64,
    /// Wire-rejected input lines.
    pub wire_rejected: u64,
    /// Transient-failure retries.
    pub retries: u64,
    /// Unclean client teardowns.
    pub disconnects: u64,
    /// Undeliverable replies.
    pub dropped_replies: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(max: usize, shed: ShedPolicy) -> AdmissionQueue<u32> {
        AdmissionQueue::new(AdmissionConfig {
            max_inflight: max,
            shed,
        })
    }

    #[test]
    fn fifo_below_the_bound() {
        let q = queue(3, ShedPolicy::Reject);
        for i in 0..3 {
            assert!(matches!(q.push(i), PushOutcome::Admitted));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_pop(), Some(0));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn reject_sheds_the_new_entry() {
        let q = queue(2, ShedPolicy::Reject);
        q.push(1);
        q.push(2);
        assert!(matches!(q.push(3), PushOutcome::ShedNew));
        assert_eq!(q.try_pop(), Some(1), "admitted work untouched");
        assert!(matches!(q.push(4), PushOutcome::Admitted), "space freed");
    }

    #[test]
    fn drop_oldest_evicts_the_front() {
        let q = queue(2, ShedPolicy::DropOldest);
        q.push(1);
        q.push(2);
        match q.push(3) {
            PushOutcome::ShedOldest(victim) => assert_eq!(victim, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = queue(4, ShedPolicy::Reject);
        q.push(7);
        q.push(8);
        q.close();
        assert!(
            matches!(q.push(9), PushOutcome::ShedNew),
            "closed queue sheds"
        );
        assert_eq!(q.pop_wait(), Some(7), "queued work still decided");
        assert_eq!(q.pop_wait(), Some(8));
        assert_eq!(q.pop_wait(), None, "then the stream ends");
    }

    #[test]
    fn pop_wait_blocks_until_push() {
        let q = std::sync::Arc::new(queue(2, ShedPolicy::Reject));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(42);
        assert_eq!(popper.join().unwrap(), Some(42));
    }

    #[test]
    fn outcome_sequence_is_a_pure_function_of_the_op_sequence() {
        // The determinism the chaos harness relies on: replaying the same
        // push/pop sequence yields the same outcomes, bit for bit.
        let ops: Vec<u8> = vec![0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 1];
        let run = |shed: ShedPolicy| {
            let q = queue(2, shed);
            let mut next = 0u32;
            let mut log = Vec::new();
            for &op in &ops {
                if op == 0 {
                    let outcome = q.push(next);
                    log.push(format!("{outcome:?}"));
                    next += 1;
                } else {
                    log.push(format!("{:?}", q.try_pop()));
                }
            }
            log
        };
        assert_eq!(run(ShedPolicy::Reject), run(ShedPolicy::Reject));
        assert_eq!(run(ShedPolicy::DropOldest), run(ShedPolicy::DropOldest));
        assert_ne!(
            run(ShedPolicy::Reject),
            run(ShedPolicy::DropOldest),
            "the two policies shed differently under this schedule"
        );
    }

    #[test]
    fn shed_policy_parses_and_displays() {
        assert_eq!("reject".parse::<ShedPolicy>().unwrap(), ShedPolicy::Reject);
        assert_eq!(
            "drop-oldest".parse::<ShedPolicy>().unwrap(),
            ShedPolicy::DropOldest
        );
        assert!("lifo".parse::<ShedPolicy>().is_err());
        assert_eq!(ShedPolicy::DropOldest.to_string(), "drop-oldest");
    }

    #[test]
    fn zero_inflight_clamps_to_one() {
        let q = queue(0, ShedPolicy::Reject);
        assert_eq!(q.config().max_inflight, 1);
        assert!(matches!(q.push(1), PushOutcome::Admitted));
        assert!(matches!(q.push(2), PushOutcome::ShedNew));
    }
}
