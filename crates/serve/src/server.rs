//! The multi-client serving loop: N concurrent connections feeding one
//! decision thread through bounded admission.
//!
//! Thread layout (all scoped — `serve_clients` returns only after every
//! thread is done):
//!
//! ```text
//!   accept thread ──spawns──▶ reader thread per client
//!        │                        │  parse + admission push
//!        │                        ▼
//!        │                 AdmissionQueue (bounded, shed on overflow)
//!        │                        │
//!        └── close() after ───────▼
//!            readers finish   decision thread (caller's thread, owns the
//!                             DecisionService) — drains, then returns
//! ```
//!
//! Decisions stay on a single thread, which is what keeps hot-swap atomic
//! and the admitted-window output deterministic; only ingestion fans out.
//! Shed replies are written from the reader threads immediately (the
//! client that overflowed never waits on the decision queue it was refused
//! from), and graceful shutdown means: stop admitting, decide everything
//! already admitted, answer it, then return.

use std::io::Write;
use std::sync::{Arc, Mutex};

use telemetry::Value;

use crate::admission::{AdmissionConfig, AdmissionQueue, PushOutcome, ServeCounters};
use crate::net::Listener;
use crate::retry::{io_transient, retry_with, RetryPolicy};
use crate::service::{DecisionService, ServeError};
use crate::wire::{
    parse_observation_line, DecisionRecord, LineRead, LineReader, WindowObservation,
};

/// A client's writer half, shared between its reader thread (shed replies)
/// and the decision thread (normal/degraded replies).
type ClientWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted window waiting for the decision thread.
struct Entry {
    obs: WindowObservation,
    reply: ClientWriter,
}

/// Multi-client server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission bound and shed policy.
    pub admission: AdmissionConfig,
    /// Total client connections to serve before graceful shutdown
    /// (accept-loop bound; each client may stream any number of windows).
    pub clients: usize,
    /// Per-read socket timeout for client connections. `None` means reads
    /// block forever — fine for trusted peers, unwise under chaos.
    pub read_timeout: Option<std::time::Duration>,
    /// Bounded-retry policy for transient accept/read failures (a read
    /// timeout counts as one transient failure; exhaustion disconnects the
    /// client).
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::default(),
            clients: 1,
            read_timeout: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// What a completed serve run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Client connections accepted and served.
    pub clients: usize,
    /// Windows decided by the decision thread (normal + degraded).
    pub decided: u64,
}

/// Writes one record line to a client; returns whether the client was
/// still there. A vanished client costs a `dropped_replies` count, never a
/// crash — the decision itself already happened and its telemetry stands.
fn write_reply(
    writer: &ClientWriter,
    record: &DecisionRecord,
    counters: &ServeCounters,
    telemetry: &telemetry::Telemetry,
) -> bool {
    let mut guard = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let line = record.to_line();
    let ok = guard
        .write_all(line.as_bytes())
        .and_then(|()| guard.write_all(b"\n"))
        .and_then(|()| guard.flush())
        .is_ok();
    if !ok {
        ServeCounters::bump(
            &counters.dropped_replies,
            1,
            telemetry,
            "serve.dropped_replies",
        );
    }
    ok
}

/// Per-client reader loop: bounded line reading, wire validation,
/// admission push, immediate shed replies. Runs on its own thread.
#[allow(clippy::too_many_arguments)]
fn read_client(
    client_id: usize,
    reader: Box<dyn std::io::BufRead + Send>,
    writer: ClientWriter,
    queue: &AdmissionQueue<Entry>,
    counters: &ServeCounters,
    telemetry: &telemetry::Telemetry,
    policy_name: &str,
    retry: RetryPolicy,
    max_line_bytes: usize,
    expected_dims: Option<usize>,
) {
    let mut lines = LineReader::new(reader, max_line_bytes);
    let mut lineno = 0usize;
    loop {
        let read = retry_with(
            retry,
            "client_read",
            io_transient,
            |_| ServeCounters::bump(&counters.retries, 1, telemetry, "serve.retries"),
            || lines.next_line(),
        );
        let line = match read {
            Ok(Some(LineRead::Line(line))) => {
                lineno += 1;
                line
            }
            Ok(Some(LineRead::Oversized { bytes })) => {
                lineno += 1;
                ServeCounters::bump(&counters.wire_rejected, 1, telemetry, "serve.wire_rejected");
                telemetry.event(
                    "serve.wire_rejected",
                    &[
                        ("client", Value::UInt(client_id as u64)),
                        ("line", Value::UInt(lineno as u64)),
                        ("kind", Value::String("oversized".to_string())),
                        ("bytes", Value::UInt(bytes as u64)),
                    ],
                );
                continue;
            }
            Ok(None) => return, // clean EOF
            Err(exhausted) => {
                ServeCounters::bump(&counters.disconnects, 1, telemetry, "serve.disconnects");
                telemetry.event(
                    "serve.disconnect",
                    &[
                        ("client", Value::UInt(client_id as u64)),
                        ("error", Value::String(exhausted.to_string())),
                    ],
                );
                return;
            }
        };
        let obs = match parse_observation_line(&line, max_line_bytes, expected_dims) {
            Ok(Some(obs)) => obs,
            Ok(None) => continue, // blank keepalive
            Err(e) => {
                ServeCounters::bump(&counters.wire_rejected, 1, telemetry, "serve.wire_rejected");
                telemetry.event(
                    "serve.wire_rejected",
                    &[
                        ("client", Value::UInt(client_id as u64)),
                        ("line", Value::UInt(lineno as u64)),
                        ("kind", Value::String(e.kind().to_string())),
                        ("error", Value::String(e.to_string())),
                    ],
                );
                continue;
            }
        };
        let window = obs.window;
        match queue.push(Entry {
            obs,
            reply: writer.clone(),
        }) {
            PushOutcome::Admitted => {}
            PushOutcome::ShedNew => {
                ServeCounters::bump(&counters.shed, 1, telemetry, "serve.shed");
                let record = DecisionRecord::shed(window, policy_name);
                write_reply(&writer, &record, counters, telemetry);
            }
            PushOutcome::ShedOldest(victim) => {
                ServeCounters::bump(&counters.shed, 1, telemetry, "serve.shed");
                let record = DecisionRecord::shed(victim.obs.window, policy_name);
                write_reply(&victim.reply, &record, counters, telemetry);
            }
        }
    }
}

/// Serves `config.clients` connections from `listener` through `service`,
/// returning once every accepted connection has ended and every admitted
/// window is decided and answered.
///
/// The caller's thread becomes the decision thread. Overload is shed per
/// `config.admission`; malformed input is skipped and counted; transient
/// I/O is retried with bounded backoff. The only fatal errors are
/// listener-level: a non-transient accept failure, or accept-retry
/// exhaustion.
///
/// # Errors
///
/// [`ServeError::Io`] / [`ServeError::RetryExhausted`] from the accept
/// loop. Windows admitted before the failure are still decided and
/// answered first (the queue drains before the error is returned).
pub fn serve_clients(
    listener: &Listener,
    service: &mut DecisionService,
    config: &ServerConfig,
) -> Result<ServerReport, ServeError> {
    let queue = AdmissionQueue::new(config.admission);
    let counters = service.counters();
    let telemetry = service.telemetry();
    let policy_name = service.policy_name().to_string();
    let max_line_bytes = service.max_line_bytes();
    let expected_dims = service.expected_dims();
    let clients = config.clients.max(1);
    let accept_error: Mutex<Option<ServeError>> = Mutex::new(None);
    let accepted = std::sync::atomic::AtomicUsize::new(0);

    let mut decided = 0u64;
    std::thread::scope(|scope| {
        let queue = &queue;
        let counters = counters.as_ref();
        let telemetry = &telemetry;
        let policy_name = policy_name.as_str();
        let accept_error = &accept_error;
        let accepted = &accepted;
        scope.spawn(move || {
            let mut readers = Vec::with_capacity(clients);
            for client_id in 0..clients {
                let conn = retry_with(
                    config.retry,
                    "accept",
                    io_transient,
                    |_| ServeCounters::bump(&counters.retries, 1, telemetry, "serve.retries"),
                    || listener.accept_timed(config.read_timeout),
                );
                let (reader, writer) = match conn {
                    Ok(halves) => halves,
                    Err(exhausted) => {
                        let err = if exhausted.attempts == 1 && !io_transient(&exhausted.last) {
                            ServeError::Io {
                                op: "accept",
                                source: exhausted.last,
                            }
                        } else {
                            ServeError::RetryExhausted {
                                op: "accept",
                                attempts: exhausted.attempts,
                                last: exhausted.last,
                            }
                        };
                        *accept_error
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(err);
                        break;
                    }
                };
                accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let writer: ClientWriter = Arc::new(Mutex::new(writer));
                let retry = config.retry;
                readers.push(scope.spawn(move || {
                    read_client(
                        client_id,
                        reader,
                        writer,
                        queue,
                        counters,
                        telemetry,
                        policy_name,
                        retry,
                        max_line_bytes,
                        expected_dims,
                    );
                }));
            }
            for handle in readers {
                let _ = handle.join();
            }
            // All clients done (or accept failed): stop admitting. The
            // decision thread drains what was admitted, then returns.
            queue.close();
        });

        while let Some(entry) = queue.pop_wait() {
            let record = service.handle(&entry.obs);
            decided += 1;
            write_reply(&entry.reply, &record, counters, telemetry);
        }
    });

    if let Some(err) = accept_error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        return Err(err);
    }
    Ok(ServerReport {
        clients: accepted.load(std::sync::atomic::Ordering::Relaxed),
        decided,
    })
}
