//! `miras-serve`: the trained autoscaler as a long-running decision
//! service.
//!
//! Everything else in this workspace is batch figure-generation; this
//! crate is the deployable artifact the paper ultimately describes — a
//! *controller* that continuously maps window observations to allocation
//! actions:
//!
//! * **Wire format** ([`WindowObservation`] in, [`DecisionRecord`] out):
//!   JSON Lines over stdin/stdout, a TCP socket, or a Unix socket
//!   ([`Listener`]).
//! * **Decision loop** ([`DecisionService`]): wraps any registry-built
//!   [`Policy`](baselines::Policy) with per-decision latency measurement
//!   (the <1 ms/decision budget is checked against the exact
//!   nearest-rank p99, [`LatencyStats`]) and telemetry.
//! * **Checkpoint hot-swap** ([`CheckpointWatcher`]): the watched path is
//!   polled between windows and the policy swapped atomically — no
//!   request is ever dropped or split across policies; versions come from
//!   the checkpoint's iteration field.
//! * **Scrape endpoint** ([`spawn_metrics_endpoint`]): the telemetry
//!   subsystem rendered as a plaintext `/metrics` page.
//! * **Shadow mode / determinism proof** ([`replay_stream`]): decision
//!   records contain no wall-clock, so a streaming run's output is
//!   byte-identical to a batch replay of the same stream at the same
//!   checkpoint.
//!
//! # Examples
//!
//! ```
//! use baselines::{by_name, PolicyConfig};
//! use serve::{replay_stream, DecisionService};
//! use telemetry::Telemetry;
//! use workflow::Ensemble;
//!
//! let cfg = PolicyConfig::new(&Ensemble::msd());
//! let stream = "{\"window\":0,\"wip\":[3.0,1.0,0.0,2.0]}\n";
//!
//! // Live service...
//! let mut svc = DecisionService::new(by_name("uniform", &cfg).unwrap(), Telemetry::noop());
//! let live = svc.handle_stream(stream).unwrap();
//!
//! // ...is byte-identical to a bare batch replay.
//! let mut policy = by_name("uniform", &cfg).unwrap();
//! let batch = replay_stream(policy.as_mut(), stream).unwrap();
//! assert_eq!(live, batch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod service;
mod watcher;
mod wire;

pub use net::{spawn_metrics_endpoint, Listener};
pub use service::{record_stream, replay_stream, DecisionService, LatencyStats, ServeError};
pub use watcher::{load_policy, CheckpointWatcher, LoadError, SwapOutcome};
pub use wire::{DecisionRecord, WindowObservation};
