//! `miras-serve`: the trained autoscaler as a long-running decision
//! service.
//!
//! Everything else in this workspace is batch figure-generation; this
//! crate is the deployable artifact the paper ultimately describes — a
//! *controller* that continuously maps window observations to allocation
//! actions:
//!
//! * **Wire format** ([`WindowObservation`] in, [`DecisionRecord`] out):
//!   JSON Lines over stdin/stdout, a TCP socket, or a Unix socket
//!   ([`Listener`]). Malformed, oversized, or wrong-shape lines are
//!   skipped and counted ([`WireError`], `serve.wire_rejected`) — one bad
//!   line never aborts a stream.
//! * **Decision loop** ([`DecisionService`]): wraps any registry-built
//!   [`Policy`](baselines::Policy) with per-decision latency measurement
//!   (the <1 ms/decision budget is checked against the exact
//!   nearest-rank p99, [`LatencyStats`]) and telemetry. With a deadline
//!   and a fallback attached, a primary decision that overruns its budget
//!   is replaced by the cheap deterministic fallback policy's decision,
//!   stamped `degraded: true` — the controller always answers on time.
//! * **Admission control** ([`AdmissionQueue`], [`ShedPolicy`]): a bounded
//!   inbound queue between client readers and the single decision thread;
//!   overflow is shed with an immediate typed `status: "shed"` reply
//!   rather than blocking anyone.
//! * **Multi-client serving** ([`serve_clients`]): N concurrent
//!   connections, per-client reader threads, one decision thread,
//!   graceful drain on shutdown; transient socket failures get bounded
//!   retry with exponential backoff ([`RetryPolicy`]).
//! * **Checkpoint hot-swap** ([`CheckpointWatcher`]): the watched path is
//!   polled between windows and the policy swapped atomically — no
//!   request is ever dropped or split across policies; change detection
//!   is by `(mtime, len, content checksum)`, so same-length rewrites
//!   within the mtime granularity are still caught.
//! * **Scrape endpoint** ([`spawn_metrics_endpoint`]): the telemetry
//!   subsystem rendered as a plaintext `/metrics` page.
//! * **Shadow mode / determinism proof** ([`replay_stream`]): decision
//!   records contain no wall-clock, so a streaming run's output is
//!   byte-identical to a batch replay of the same stream at the same
//!   checkpoint.
//! * **Chaos harness** ([`chaos`]): seeded fault schedules (malformed
//!   lines, disconnects, stalls, overload bursts, checkpoint corruption)
//!   replayed deterministically against the production components, with
//!   machine-checked invariants ([`chaos::verify`]).
//!
//! # Examples
//!
//! ```
//! use baselines::{by_name, PolicyConfig};
//! use serve::{replay_stream, DecisionService};
//! use telemetry::Telemetry;
//! use workflow::Ensemble;
//!
//! let cfg = PolicyConfig::new(&Ensemble::msd());
//! let stream = "{\"window\":0,\"wip\":[3.0,1.0,0.0,2.0]}\n";
//!
//! // Live service...
//! let mut svc = DecisionService::new(by_name("uniform", &cfg).unwrap(), Telemetry::noop());
//! let live = svc.handle_stream(stream);
//!
//! // ...is byte-identical to a bare batch replay.
//! let mut policy = by_name("uniform", &cfg).unwrap();
//! let batch = replay_stream(policy.as_mut(), stream);
//! assert_eq!(live, batch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod chaos;
mod net;
mod retry;
mod server;
mod service;
mod watcher;
mod wire;

pub use admission::{
    AdmissionConfig, AdmissionQueue, CountersSnapshot, PushOutcome, ServeCounters, ShedPolicy,
};
pub use net::{spawn_metrics_endpoint, Listener};
pub use retry::{io_transient, retry_with, RetryExhausted, RetryPolicy};
pub use server::{serve_clients, ServerConfig, ServerReport};
pub use service::{record_stream, replay_stream, DecisionService, LatencyStats, ServeError};
pub use watcher::{load_policy, CheckpointWatcher, LoadError, SwapOutcome};
pub use wire::{
    parse_observation_line, DecisionRecord, DecisionStatus, LineRead, LineReader,
    WindowObservation, WireError, MAX_LINE_BYTES,
};
