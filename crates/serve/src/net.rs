//! Socket ingestion and the metrics scrape endpoint.
//!
//! Deliberately minimal: the wire protocol is JSON Lines over a stream
//! socket (one observation per line in, one decision per line out), and
//! the metrics endpoint speaks just enough HTTP/1.1 for Prometheus-style
//! scrapers and `curl`. No async runtime — the decision loop is
//! single-threaded by design (hot-swap atomicity comes from swapping
//! between windows), and a scrape endpoint serving one small page needs
//! nothing more than a thread.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use telemetry::ScrapeRecorder;

/// A bound observation-stream listener (`--listen tcp:ADDR` or
/// `--listen unix:PATH`).
pub enum Listener {
    /// TCP stream socket.
    Tcp(TcpListener),
    /// Unix-domain stream socket.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a listener from its spec: `tcp:HOST:PORT` or `unix:PATH`.
    /// An existing socket file at a `unix:` path is removed first (the
    /// conventional take-over-the-address behaviour for local services).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an unrecognized spec; otherwise whatever bind
    /// returns.
    pub fn bind(spec: &str) -> io::Result<Listener> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            return Ok(Listener::Tcp(TcpListener::bind(addr)?));
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            let path = PathBuf::from(path);
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
            return Ok(Listener::Unix(UnixListener::bind(&path)?, path));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("listen spec must be tcp:HOST:PORT or unix:PATH, got {spec}"),
        ))
    }

    /// The bound TCP address, when TCP (useful with port 0 in tests).
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }

    /// Accepts one client, returning buffered line-oriented reader and
    /// writer halves of the same connection. Both halves are `Send` so the
    /// multi-client server can hand them to reader threads.
    ///
    /// # Errors
    ///
    /// Propagates accept/clone failures.
    pub fn accept(&self) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        self.accept_timed(None)
    }

    /// [`Listener::accept`] with an optional per-read timeout on the
    /// returned connection. A timed-out read surfaces as a transient
    /// `WouldBlock`/`TimedOut` error, which is what lets reader threads
    /// apply bounded retry instead of hanging forever on a slow-loris
    /// client.
    ///
    /// # Errors
    ///
    /// Propagates accept/clone/configure failures.
    pub fn accept_timed(
        &self,
        read_timeout: Option<std::time::Duration>,
    ) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_read_timeout(read_timeout)?;
                let reader = stream.try_clone()?;
                Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
            }
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_read_timeout(read_timeout)?;
                let reader = stream.try_clone()?;
                Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Serves `scrape.render()` as a plaintext HTTP page on `addr`
/// (`host:port`; port 0 picks a free port — the chosen address is
/// returned). Every request gets the current aggregates regardless of
/// method or path, which is all a scrape target needs.
///
/// The endpoint runs on a detached thread for the life of the process;
/// the decision loop never blocks on it.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_metrics_endpoint(
    addr: &str,
    scrape: Arc<ScrapeRecorder>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain the request head (we answer every request the same way).
            let mut head = [0u8; 1024];
            let _ = stream.read(&mut head);
            let body = scrape.render();
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok((local, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn metrics_endpoint_serves_current_aggregates() {
        let scrape = ScrapeRecorder::new();
        let tel = telemetry::Telemetry::new(scrape.clone());
        tel.counter("serve.decisions", 5);
        let (addr, _handle) = spawn_metrics_endpoint("127.0.0.1:0", scrape).unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("serve_decisions 5"), "{response}");
    }

    #[test]
    fn tcp_listener_round_trips_lines() {
        let listener = Listener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"hello\n").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        });
        let (mut reader, mut writer) = listener.accept().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello\n");
        writer.write_all(b"ack\n").unwrap();
        drop(writer);
        drop(reader);
        assert_eq!(client.join().unwrap(), "ack\n");
    }

    #[test]
    fn unix_listener_round_trips_lines() {
        let path = std::env::temp_dir().join("miras_serve_net_test.sock");
        let listener = Listener::bind(&format!("unix:{}", path.display())).unwrap();
        let path_for_client = path.clone();
        let client = std::thread::spawn(move || {
            let mut conn = std::os::unix::net::UnixStream::connect(&path_for_client).unwrap();
            conn.write_all(b"{\"window\":0}\n").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        });
        let (mut reader, mut writer) = listener.accept().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"window\":0}\n");
        writer.write_all(b"ok\n").unwrap();
        drop(writer);
        drop(reader);
        assert_eq!(client.join().unwrap(), "ok\n");
        drop(listener);
        assert!(!path.exists(), "socket file cleaned up on drop");
    }

    #[test]
    fn bad_listen_spec_is_invalid_input() {
        let err = Listener::bind("udp:1.2.3.4:5").err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
