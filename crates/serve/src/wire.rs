//! The serving wire format: JSON Lines in both directions, hardened for
//! hostile input.
//!
//! One [`WindowObservation`] per input line, one [`DecisionRecord`] per
//! output line. Decision records deliberately exclude the measured latency
//! — wall-clock varies run to run, and the shadow-mode determinism proof
//! (`miras-serve --shadow` output is byte-identical to a batch replay)
//! requires every emitted byte to be a pure function of the stream and the
//! checkpoint. Latency is recorded through telemetry instead.
//!
//! A malformed line — garbage bytes, truncated JSON, an oversized line, a
//! WIP vector of the wrong dimension or with non-finite entries — is a
//! typed [`WireError`], which the service **skips and counts**
//! (`serve.wire_rejected`) instead of aborting the stream: one bad client
//! line must never take down a multi-client control loop. [`LineReader`]
//! additionally bounds per-line memory, so a slow-loris client feeding an
//! endless unterminated line cannot exhaust the server.

use std::fmt;
use std::io::{self, BufRead};

use serde::{Deserialize, Serialize};

use microsim::WindowMetrics;

/// Default upper bound on one wire line, in bytes. A window observation at
/// paper scale is a few hundred bytes; a megabyte already implies a broken
/// or hostile client.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Why an input line was rejected. Rejected lines are skipped and counted
/// (`serve.wire_rejected`), never fatal.
#[derive(Debug)]
pub enum WireError {
    /// The line is not valid JSON for a [`WindowObservation`].
    Parse {
        /// Parser diagnostics.
        message: String,
    },
    /// The line exceeded the per-line byte bound and was discarded.
    Oversized {
        /// How many bytes the line held when it was cut off.
        bytes: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The observation parsed but its WIP vector has the wrong dimension
    /// for the serving ensemble (feeding it onward would be undefined —
    /// for learned policies, a dimension-mismatch panic).
    BadDims {
        /// Dimension received.
        got: usize,
        /// Dimension the service expects.
        want: usize,
    },
    /// The observation parsed but carries non-finite WIP entries.
    NonFinite {
        /// Index of the first offending entry.
        index: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse { message } => write!(f, "unparseable observation: {message}"),
            WireError::Oversized { bytes, limit } => {
                write!(f, "line of {bytes}+ bytes exceeds the {limit}-byte bound")
            }
            WireError::BadDims { got, want } => {
                write!(f, "wip has {got} entries, the serving ensemble has {want}")
            }
            WireError::NonFinite { index } => {
                write!(f, "wip[{index}] is not finite")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Short stable label for telemetry events (`parse`, `oversized`,
    /// `bad_dims`, `non_finite`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Parse { .. } => "parse",
            WireError::Oversized { .. } => "oversized",
            WireError::BadDims { .. } => "bad_dims",
            WireError::NonFinite { .. } => "non_finite",
        }
    }
}

/// Parses one wire line into a [`WindowObservation`], enforcing the byte
/// bound, the WIP dimension (when `expected_dims` is known) and WIP
/// finiteness.
///
/// Empty/whitespace-only lines return `Ok(None)` — they are stream keepalive
/// noise, not errors.
///
/// # Errors
///
/// A typed [`WireError`] describing why the line must be skipped.
pub fn parse_observation_line(
    line: &str,
    max_bytes: usize,
    expected_dims: Option<usize>,
) -> Result<Option<WindowObservation>, WireError> {
    if line.len() > max_bytes {
        return Err(WireError::Oversized {
            bytes: line.len(),
            limit: max_bytes,
        });
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let obs: WindowObservation = serde_json::from_str(trimmed).map_err(|e| WireError::Parse {
        message: e.to_string(),
    })?;
    if let Some(want) = expected_dims {
        if obs.wip.len() != want {
            return Err(WireError::BadDims {
                got: obs.wip.len(),
                want,
            });
        }
    }
    if let Some(index) = obs.wip.iter().position(|w| !w.is_finite()) {
        return Err(WireError::NonFinite { index });
    }
    Ok(Some(obs))
}

/// One line produced by [`LineReader::next_line`].
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (newline stripped; invalid UTF-8 replaced, which the
    /// JSON parser then rejects as garbage).
    Line(String),
    /// A line that exceeded the byte bound; its bytes were discarded up to
    /// the next newline.
    Oversized {
        /// Bytes the line held when the reader gave up on it.
        bytes: usize,
    },
}

/// Memory-bounded, resumable line reader over any [`BufRead`].
///
/// Unlike [`BufRead::read_line`], a line longer than the bound is
/// *discarded as it streams in* — the reader never buffers more than the
/// bound per line, so a slow-loris client cannot balloon server memory.
/// A transient read error (e.g. a socket read timeout) leaves the partial
/// line intact; calling [`LineReader::next_line`] again resumes exactly
/// where the failed read stopped.
pub struct LineReader<R> {
    inner: R,
    max_bytes: usize,
    partial: Vec<u8>,
    discarding: bool,
    discarded: usize,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps `inner`, bounding every line at `max_bytes`.
    pub fn new(inner: R, max_bytes: usize) -> Self {
        LineReader {
            inner,
            max_bytes,
            partial: Vec::new(),
            discarding: false,
            discarded: 0,
        }
    }

    /// Reads the next line. `Ok(None)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error; partial-line state survives
    /// the error, so transient failures (timeouts) are resumable.
    pub fn next_line(&mut self) -> io::Result<Option<LineRead>> {
        loop {
            let (consumed, newline_at) = {
                let chunk = self.inner.fill_buf()?;
                if chunk.is_empty() {
                    // EOF: a trailing unterminated line still counts.
                    if self.discarding {
                        let bytes = self.discarded;
                        self.discarding = false;
                        self.discarded = 0;
                        return Ok(Some(LineRead::Oversized { bytes }));
                    }
                    if self.partial.is_empty() {
                        return Ok(None);
                    }
                    let line = String::from_utf8_lossy(&self.partial).into_owned();
                    self.partial.clear();
                    return Ok(Some(LineRead::Line(line)));
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if !self.discarding {
                            self.partial.extend_from_slice(&chunk[..pos]);
                        } else {
                            self.discarded += pos;
                        }
                        (pos + 1, true)
                    }
                    None => {
                        if !self.discarding {
                            self.partial.extend_from_slice(chunk);
                        } else {
                            self.discarded += chunk.len();
                        }
                        (chunk.len(), false)
                    }
                }
            };
            self.inner.consume(consumed);
            if !self.discarding && self.partial.len() > self.max_bytes {
                // Switch to discard mode: drop what we buffered and skip
                // the rest of this line as it arrives.
                self.discarded = self.partial.len();
                self.partial.clear();
                self.partial.shrink_to(self.max_bytes.min(4096));
                self.discarding = true;
            }
            if newline_at {
                if self.discarding {
                    let bytes = self.discarded;
                    self.discarding = false;
                    self.discarded = 0;
                    return Ok(Some(LineRead::Oversized { bytes }));
                }
                let line = String::from_utf8_lossy(&self.partial).into_owned();
                self.partial.clear();
                return Ok(Some(LineRead::Line(line)));
            }
        }
    }
}

/// One decision window's observation, as received on the wire.
///
/// `wip` is the work-in-progress vector (requests queued or in service per
/// task type) at the decision boundary — the MIRAS state. `metrics`, when
/// present, carries the *previous* window's full metrics, which the
/// adaptive baselines (DRS, MONAD) use for model identification; learned
/// policies only need `wip`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// Window index (monotone within a stream).
    pub window: usize,
    /// Work-in-progress per task type.
    pub wip: Vec<f64>,
    /// The previous window's metrics, if the client tracks them
    /// (serialized as `null` when absent).
    #[serde(default)]
    pub metrics: Option<WindowMetrics>,
}

/// Why a [`DecisionRecord`] carries no usable allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionStatus {
    /// The window was shed by admission control before any policy ran; the
    /// record's `allocations` are empty and must not be actuated.
    Shed,
}

impl Serialize for DecisionStatus {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            DecisionStatus::Shed => serializer.serialize_str("shed"),
        }
    }
}

impl<'de> Deserialize<'de> for DecisionStatus {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        match deserializer.take_value()? {
            serde::value::Value::String(s) if s == "shed" => Ok(DecisionStatus::Shed),
            serde::value::Value::String(s) => {
                Err(D::Error::custom(format!("unknown decision status '{s}'")))
            }
            other => Err(D::Error::invalid_type(
                other.kind(),
                "decision status string",
            )),
        }
    }
}

/// One allocation decision, as emitted on the wire.
///
/// The `status` and `degraded` fields are omitted from serialization in
/// the normal case (hand-written [`Serialize`] impl below), so a healthy
/// stream's bytes are identical to the pre-hardening wire format — the
/// shadow-vs-replay byte-compare carries over unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Echo of the observation's window index.
    pub window: usize,
    /// Name of the policy that decided (for shed records, the name of the
    /// policy that *would* have decided).
    pub policy: String,
    /// Version of the policy that decided (the checkpoint's iteration for
    /// checkpoint-loaded policies; changes mid-stream on hot-swap; 0 for
    /// shed records, where no versioned decision was made).
    pub policy_version: u64,
    /// Consumer counts per task type (empty for shed records).
    pub allocations: Vec<usize>,
    /// Present only when the window produced no usable allocation
    /// (`"shed"` under admission control).
    pub status: Option<DecisionStatus>,
    /// `true` when the primary policy missed its decision deadline (or was
    /// otherwise unavailable) and the allocation came from the deterministic
    /// fallback policy instead.
    pub degraded: bool,
}

impl Serialize for DecisionRecord {
    // Hand-written so `status`/`degraded` are omitted when at their healthy
    // defaults: the vendored derive has no `skip_serializing_if`, and the
    // byte-identity proof against pre-hardening streams depends on the
    // omission.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra = usize::from(self.status.is_some()) + usize::from(self.degraded);
        let mut s = serializer.serialize_struct("DecisionRecord", 4 + extra)?;
        s.serialize_field("window", &self.window)?;
        s.serialize_field("policy", &self.policy)?;
        s.serialize_field("policy_version", &self.policy_version)?;
        s.serialize_field("allocations", &self.allocations)?;
        if let Some(status) = &self.status {
            s.serialize_field("status", status)?;
        }
        if self.degraded {
            s.serialize_field("degraded", &self.degraded)?;
        }
        s.end()
    }
}

impl<'de> Deserialize<'de> for DecisionRecord {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::{expect_object, opt_field, req_field};
        use serde::value::from_value;
        let mut fields = expect_object::<D::Error>(deserializer.take_value()?, "DecisionRecord")?;
        Ok(DecisionRecord {
            window: from_value(req_field::<D::Error>(&mut fields, "window")?)?,
            policy: from_value(req_field::<D::Error>(&mut fields, "policy")?)?,
            policy_version: from_value(req_field::<D::Error>(&mut fields, "policy_version")?)?,
            allocations: from_value(req_field::<D::Error>(&mut fields, "allocations")?)?,
            status: match opt_field(&mut fields, "status") {
                Some(value) => Some(from_value(value)?),
                None => None,
            },
            degraded: match opt_field(&mut fields, "degraded") {
                Some(value) => from_value(value)?,
                None => false,
            },
        })
    }
}

impl DecisionRecord {
    /// A normal decision from the primary policy.
    #[must_use]
    pub fn normal(
        window: usize,
        policy: &str,
        policy_version: u64,
        allocations: Vec<usize>,
    ) -> Self {
        DecisionRecord {
            window,
            policy: policy.to_string(),
            policy_version,
            allocations,
            status: None,
            degraded: false,
        }
    }

    /// A degraded decision: the fallback policy answered for the primary.
    #[must_use]
    pub fn degraded(
        window: usize,
        policy: &str,
        policy_version: u64,
        allocations: Vec<usize>,
    ) -> Self {
        DecisionRecord {
            window,
            policy: policy.to_string(),
            policy_version,
            allocations,
            status: None,
            degraded: true,
        }
    }

    /// A shed reply: admission control refused the window before any policy
    /// ran. `policy` names the serving policy for attribution; the version
    /// is 0 because no versioned decision was made.
    #[must_use]
    pub fn shed(window: usize, policy: &str) -> Self {
        DecisionRecord {
            window,
            policy: policy.to_string(),
            policy_version: 0,
            allocations: Vec::new(),
            status: Some(DecisionStatus::Shed),
            degraded: false,
        }
    }

    /// Whether this record carries a usable allocation (not shed).
    #[must_use]
    pub fn is_actionable(&self) -> bool {
        self.status.is_none()
    }

    /// Renders the record as its wire line (stable field order, no
    /// trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which cannot happen for this type
    /// (no floats, no non-string keys).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("DecisionRecord always serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn observation_parses_without_metrics() {
        let obs: WindowObservation =
            serde_json::from_str(r#"{"window":3,"wip":[1.0,0.0,2.5]}"#).unwrap();
        assert_eq!(obs.window, 3);
        assert_eq!(obs.wip, vec![1.0, 0.0, 2.5]);
        assert!(obs.metrics.is_none());
    }

    #[test]
    fn decision_line_is_stable_and_omits_health_fields_when_normal() {
        let d = DecisionRecord::normal(1, "miras", 4, vec![5, 3, 4, 2]);
        assert_eq!(
            d.to_line(),
            r#"{"window":1,"policy":"miras","policy_version":4,"allocations":[5,3,4,2]}"#
        );
        let back: DecisionRecord = serde_json::from_str(&d.to_line()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn shed_and_degraded_records_round_trip() {
        let s = DecisionRecord::shed(9, "miras");
        assert_eq!(
            s.to_line(),
            r#"{"window":9,"policy":"miras","policy_version":0,"allocations":[],"status":"shed"}"#
        );
        assert!(!s.is_actionable());
        let d = DecisionRecord::degraded(2, "wip-proportional", 0, vec![4, 4, 3, 3]);
        assert!(
            d.to_line().ends_with(r#""degraded":true}"#),
            "{}",
            d.to_line()
        );
        assert!(d.is_actionable());
        for r in [s, d] {
            let back: DecisionRecord = serde_json::from_str(&r.to_line()).unwrap();
            assert_eq!(back, r);
        }
    }

    // --- fuzz-ish malformed-line coverage -------------------------------

    #[test]
    fn garbage_lines_are_typed_parse_errors() {
        for garbage in [
            "not json",
            "{",
            "[]",
            "42",
            "{\"window\":0}",                  // missing wip
            "{\"wip\":[1.0]}",                 // missing window
            "{\"window\":-1,\"wip\":[1.0]}",   // negative index
            "{\"window\":0,\"wip\":[\"x\"]}",  // wrong wip type
            "\u{fffd}\u{fffd}binary\u{0}junk", // replacement/NUL bytes
        ] {
            let err = parse_observation_line(garbage, MAX_LINE_BYTES, None)
                .err()
                .unwrap_or_else(|| panic!("{garbage:?} should be rejected"));
            assert!(matches!(err, WireError::Parse { .. }), "{garbage:?}: {err}");
            assert_eq!(err.kind(), "parse");
        }
    }

    #[test]
    fn truncated_lines_are_typed_parse_errors() {
        let full = r#"{"window":3,"wip":[1.0,0.0,2.5],"metrics":null}"#;
        for cut in 1..full.len() {
            let truncated = &full[..cut];
            let result = parse_observation_line(truncated, MAX_LINE_BYTES, None);
            if let Err(e) = result {
                assert!(matches!(e, WireError::Parse { .. }), "cut at {cut}: {e}");
            }
            // Some prefixes happen to be valid JSON of the wrong shape;
            // those are also Parse errors, asserted above. No prefix may
            // parse as a *valid* observation except the full line.
            if cut < full.len() {
                assert!(
                    parse_observation_line(truncated, MAX_LINE_BYTES, None).is_err(),
                    "prefix of length {cut} must not parse"
                );
            }
        }
    }

    #[test]
    fn oversized_lines_are_rejected_by_size_alone() {
        let huge = format!("{{\"window\":0,\"wip\":[{}1.0]}}", "1.0,".repeat(3000));
        let err = parse_observation_line(&huge, 1024, None).err().unwrap();
        match err {
            WireError::Oversized { bytes, limit } => {
                assert_eq!(bytes, huge.len());
                assert_eq!(limit, 1024);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn dimension_and_finiteness_guards() {
        let err = parse_observation_line(r#"{"window":0,"wip":[1.0,2.0]}"#, 4096, Some(4))
            .err()
            .unwrap();
        assert!(
            matches!(err, WireError::BadDims { got: 2, want: 4 }),
            "{err}"
        );
        let err = parse_observation_line(r#"{"window":0,"wip":[1.0,null,2.0,3.0]}"#, 4096, Some(4))
            .err()
            .unwrap();
        // serde rejects null-in-f64-vec at parse time.
        assert!(matches!(err, WireError::Parse { .. }), "{err}");
        // 1e999 overflows to +inf in float parsing — the JSON accepts it,
        // the finiteness guard must not.
        let err = parse_observation_line(r#"{"window":0,"wip":[1.0,1e999]}"#, 4096, Some(2))
            .err()
            .unwrap();
        assert!(matches!(err, WireError::NonFinite { index: 1 }), "{err}");
    }

    #[test]
    fn empty_lines_are_skipped_not_errors() {
        assert!(parse_observation_line("", 4096, None).unwrap().is_none());
        assert!(parse_observation_line("   \t", 4096, None)
            .unwrap()
            .is_none());
        let obs = parse_observation_line(r#" {"window":1,"wip":[1.0]} "#, 4096, None)
            .unwrap()
            .unwrap();
        assert_eq!(obs.window, 1);
    }

    // --- bounded line reader --------------------------------------------

    #[test]
    fn line_reader_round_trips_ordinary_lines() {
        let mut lr = LineReader::new(BufReader::new("a\nbb\n\nccc".as_bytes()), 64);
        let mut got = Vec::new();
        while let Some(line) = lr.next_line().unwrap() {
            match line {
                LineRead::Line(s) => got.push(s),
                LineRead::Oversized { .. } => panic!("nothing oversized here"),
            }
        }
        assert_eq!(got, ["a", "bb", "", "ccc"]);
    }

    #[test]
    fn line_reader_discards_oversized_lines_and_recovers() {
        let input = format!("short\n{}\nafter\n", "x".repeat(200));
        let mut lr = LineReader::new(BufReader::with_capacity(16, input.as_bytes()), 32);
        match lr.next_line().unwrap().unwrap() {
            LineRead::Line(s) => assert_eq!(s, "short"),
            other => panic!("{other:?}"),
        }
        match lr.next_line().unwrap().unwrap() {
            LineRead::Oversized { bytes } => assert_eq!(bytes, 200),
            other => panic!("{other:?}"),
        }
        match lr.next_line().unwrap().unwrap() {
            LineRead::Line(s) => assert_eq!(s, "after", "reader recovers after oversize"),
            other => panic!("{other:?}"),
        }
        assert!(lr.next_line().unwrap().is_none());
    }

    #[test]
    fn line_reader_handles_invalid_utf8_as_replaced_text() {
        let input: &[u8] = b"\xff\xfe\xfd\nok\n";
        let mut lr = LineReader::new(BufReader::new(input), 64);
        match lr.next_line().unwrap().unwrap() {
            LineRead::Line(s) => {
                assert!(parse_observation_line(&s, 64, None).is_err());
            }
            other => panic!("{other:?}"),
        }
        match lr.next_line().unwrap().unwrap() {
            LineRead::Line(s) => assert_eq!(s, "ok"),
            other => panic!("{other:?}"),
        }
    }

    /// A reader that injects a transient error mid-line, emulating a socket
    /// read timeout against a slow-loris client.
    struct Flaky<'a> {
        chunks: Vec<Option<&'a [u8]>>, // None = transient error
        at: usize,
    }

    impl std::io::Read for Flaky<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.chunks.len() {
                return Ok(0);
            }
            let item = self.chunks[self.at];
            self.at += 1;
            match item {
                None => Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "simulated timeout",
                )),
                Some(bytes) => {
                    buf[..bytes.len()].copy_from_slice(bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn line_reader_resumes_partial_lines_across_transient_errors() {
        let flaky = Flaky {
            chunks: vec![Some(b"{\"window\":0,"), None, Some(b"\"wip\":[1.0]}\n")],
            at: 0,
        };
        let mut lr = LineReader::new(BufReader::new(flaky), 256);
        let err = lr.next_line().expect_err("first pass hits the timeout");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        match lr.next_line().unwrap().unwrap() {
            LineRead::Line(s) => {
                let obs = parse_observation_line(&s, 256, Some(1)).unwrap().unwrap();
                assert_eq!(obs.window, 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
