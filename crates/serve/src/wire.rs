//! The serving wire format: JSON Lines in both directions.
//!
//! One [`WindowObservation`] per input line, one [`DecisionRecord`] per
//! output line. Decision records deliberately exclude the measured latency
//! — wall-clock varies run to run, and the shadow-mode determinism proof
//! (`miras-serve --shadow` output is byte-identical to a batch replay)
//! requires every emitted byte to be a pure function of the stream and the
//! checkpoint. Latency is recorded through telemetry instead.

use serde::{Deserialize, Serialize};

use microsim::WindowMetrics;

/// One decision window's observation, as received on the wire.
///
/// `wip` is the work-in-progress vector (requests queued or in service per
/// task type) at the decision boundary — the MIRAS state. `metrics`, when
/// present, carries the *previous* window's full metrics, which the
/// adaptive baselines (DRS, MONAD) use for model identification; learned
/// policies only need `wip`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// Window index (monotone within a stream).
    pub window: usize,
    /// Work-in-progress per task type.
    pub wip: Vec<f64>,
    /// The previous window's metrics, if the client tracks them
    /// (serialized as `null` when absent).
    #[serde(default)]
    pub metrics: Option<WindowMetrics>,
}

/// One allocation decision, as emitted on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Echo of the observation's window index.
    pub window: usize,
    /// Name of the policy that decided.
    pub policy: String,
    /// Version of the policy that decided (the checkpoint's iteration for
    /// checkpoint-loaded policies; changes mid-stream on hot-swap).
    pub policy_version: u64,
    /// Consumer counts per task type.
    pub allocations: Vec<usize>,
}

impl DecisionRecord {
    /// Renders the record as its wire line (stable field order, no
    /// trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which cannot happen for this type
    /// (no floats, no non-string keys).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("DecisionRecord always serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_parses_without_metrics() {
        let obs: WindowObservation =
            serde_json::from_str(r#"{"window":3,"wip":[1.0,0.0,2.5]}"#).unwrap();
        assert_eq!(obs.window, 3);
        assert_eq!(obs.wip, vec![1.0, 0.0, 2.5]);
        assert!(obs.metrics.is_none());
    }

    #[test]
    fn decision_line_is_stable() {
        let d = DecisionRecord {
            window: 1,
            policy: "miras".to_string(),
            policy_version: 4,
            allocations: vec![5, 3, 4, 2],
        };
        assert_eq!(
            d.to_line(),
            r#"{"window":1,"policy":"miras","policy_version":4,"allocations":[5,3,4,2]}"#
        );
        let back: DecisionRecord = serde_json::from_str(&d.to_line()).unwrap();
        assert_eq!(back, d);
    }
}
