//! The decision loop: observations in, decisions out, telemetry on the
//! side, hot-swap between windows.

use std::fmt;

use baselines::{Observation, Policy};
use telemetry::{Telemetry, Value};
use workflow::{BurstSpec, Ensemble};

use crate::watcher::{CheckpointWatcher, SwapOutcome};
use crate::wire::{DecisionRecord, WindowObservation};

/// Why the service could not process an input line.
#[derive(Debug)]
pub enum ServeError {
    /// An input line did not parse as a [`WindowObservation`].
    BadInput {
        /// 1-based line number within the stream.
        line: usize,
        /// Parser diagnostics.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadInput { line, message } => {
                write!(f, "input line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-run decision-latency aggregates (microseconds), computed by exact
/// nearest-rank percentile over every decision the service made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of decisions measured.
    pub count: usize,
    /// Median decision latency.
    pub p50_us: f64,
    /// 99th-percentile decision latency (the <1 ms budget is stated
    /// against this).
    pub p99_us: f64,
    /// Worst decision latency.
    pub max_us: f64,
}

impl LatencyStats {
    fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |p: f64| {
            let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Some(LatencyStats {
            count: sorted.len(),
            p50_us: rank(50.0),
            p99_us: rank(99.0),
            max_us: *sorted.last().expect("non-empty"),
        })
    }
}

/// The long-running decision service: one [`Policy`] behind a window
/// stream, with per-decision latency accounting and optional checkpoint
/// hot-swap.
///
/// [`DecisionService::handle`] is the entire per-window hot path: poll the
/// watcher (swap happens here, *between* windows, so no request is ever
/// dropped or split across policies), run the policy, record telemetry,
/// return the wire record. Everything the record contains is a pure
/// function of the observation and the policy — latency lives only in
/// telemetry — which is what makes shadow output byte-identical to batch
/// replay.
pub struct DecisionService {
    policy: Box<dyn Policy>,
    watcher: Option<CheckpointWatcher>,
    telemetry: Telemetry,
    latencies_us: Vec<f64>,
    swaps: u64,
    swap_failures: u64,
}

impl DecisionService {
    /// Wraps a policy. Telemetry may be [`Telemetry::noop`].
    #[must_use]
    pub fn new(policy: Box<dyn Policy>, telemetry: Telemetry) -> Self {
        telemetry.gauge("serve.policy_version", policy.policy_version() as f64);
        DecisionService {
            policy,
            watcher: None,
            telemetry,
            latencies_us: Vec::new(),
            swaps: 0,
            swap_failures: 0,
        }
    }

    /// Attaches a checkpoint watcher; every subsequent window boundary
    /// polls it and atomically swaps the policy when the file changes.
    #[must_use]
    pub fn with_watcher(mut self, watcher: CheckpointWatcher) -> Self {
        self.watcher = Some(watcher);
        self
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The active policy's version.
    #[must_use]
    pub fn policy_version(&self) -> u64 {
        self.policy.policy_version()
    }

    /// Number of successful hot-swaps so far.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Processes one window: hot-swap check, decision, telemetry.
    pub fn handle(&mut self, obs: &WindowObservation) -> DecisionRecord {
        if let Some(watcher) = &mut self.watcher {
            match watcher.poll() {
                Some(SwapOutcome::Swapped { policy, version }) => {
                    self.policy = policy;
                    self.swaps += 1;
                    self.telemetry.counter("serve.swaps", 1);
                    self.telemetry.gauge("serve.policy_version", version as f64);
                    self.telemetry.event(
                        "serve.swap",
                        &[
                            ("window", Value::UInt(obs.window as u64)),
                            ("policy_version", Value::UInt(version)),
                        ],
                    );
                }
                Some(SwapOutcome::Failed(e)) => {
                    self.swap_failures += 1;
                    self.telemetry.counter("serve.swap_failures", 1);
                    self.telemetry.event(
                        "serve.swap_failed",
                        &[
                            ("window", Value::UInt(obs.window as u64)),
                            ("error", Value::String(e.to_string())),
                        ],
                    );
                }
                None => {}
            }
        }
        let decision = self.policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        let latency_us = decision.latency.as_secs_f64() * 1e6;
        self.latencies_us.push(latency_us);
        self.telemetry.counter("serve.decisions", 1);
        self.telemetry
            .observe("serve.decision_latency", decision.latency.as_secs_f64());
        DecisionRecord {
            window: obs.window,
            policy: self.policy.name().to_string(),
            policy_version: decision.policy_version,
            allocations: decision.allocations,
        }
    }

    /// Runs a whole JSONL stream through [`DecisionService::handle`],
    /// returning one record per non-empty line.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] on the first malformed line.
    pub fn handle_stream(&mut self, text: &str) -> Result<Vec<DecisionRecord>, ServeError> {
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obs: WindowObservation =
                serde_json::from_str(line).map_err(|e| ServeError::BadInput {
                    line: idx + 1,
                    message: e.to_string(),
                })?;
            records.push(self.handle(&obs));
        }
        Ok(records)
    }

    /// Latency aggregates over every decision so far (`None` before the
    /// first decision).
    #[must_use]
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_samples(&self.latencies_us)
    }

    /// Publishes final latency gauges (`serve.latency_p99_us` et al.) and
    /// flushes the telemetry sink.
    pub fn finish(&self) {
        if let Some(stats) = self.latency_stats() {
            self.telemetry.gauge("serve.latency_p50_us", stats.p50_us);
            self.telemetry.gauge("serve.latency_p99_us", stats.p99_us);
            self.telemetry.gauge("serve.latency_max_us", stats.max_us);
        }
        self.telemetry.flush();
    }
}

/// Batch-replays a JSONL observation stream through a bare policy — no
/// service machinery, no telemetry, no watcher. This is the reference the
/// shadow-mode determinism proof compares against: if the streaming
/// service's records differ from this in a single byte, the serving layer
/// changed the numerics.
///
/// # Errors
///
/// [`ServeError::BadInput`] on the first malformed line.
pub fn replay_stream(
    policy: &mut dyn Policy,
    text: &str,
) -> Result<Vec<DecisionRecord>, ServeError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obs: WindowObservation =
            serde_json::from_str(line).map_err(|e| ServeError::BadInput {
                line: idx + 1,
                message: e.to_string(),
            })?;
        let decision = policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        records.push(DecisionRecord {
            window: obs.window,
            policy: policy.name().to_string(),
            policy_version: decision.policy_version,
            allocations: decision.allocations,
        });
    }
    Ok(records)
}

/// Generates a realistic observation stream by driving the cluster
/// emulator with `policy` for `windows` windows (optionally front-loading
/// `burst`), exactly as the bench harness would. Each emitted observation
/// carries the previous window's metrics, so replaying the stream gives
/// adaptive baselines the same inputs they would see live.
#[must_use]
pub fn record_stream(
    ensemble: &Ensemble,
    seed: u64,
    windows: usize,
    burst: Option<&BurstSpec>,
    policy: &mut dyn Policy,
) -> Vec<WindowObservation> {
    use microsim::{EnvConfig, MicroserviceEnv};

    let config = EnvConfig::for_ensemble(ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble.clone(), config);
    let _ = env.reset();
    if let Some(b) = burst {
        env.inject_burst(b);
    }
    let mut observations = Vec::with_capacity(windows);
    let mut previous = None;
    for window in 0..windows {
        let obs = WindowObservation {
            window,
            wip: env.state(),
            metrics: previous,
        };
        let decision = policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        let out = env.step(&decision.allocations);
        previous = Some(out.metrics);
        observations.push(obs);
    }
    observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{by_name, PolicyConfig};

    fn uniform() -> Box<dyn Policy> {
        by_name("uniform", &PolicyConfig::new(&Ensemble::msd())).unwrap()
    }

    #[test]
    fn service_emits_one_record_per_line() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let stream = "{\"window\":0,\"wip\":[1.0,2.0,3.0,4.0]}\n\n{\"window\":1,\"wip\":[0.0,0.0,0.0,0.0]}\n";
        let records = svc.handle_stream(stream).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].window, 0);
        assert_eq!(records[1].window, 1);
        assert_eq!(records[0].policy, "uniform");
        let stats = svc.latency_stats().unwrap();
        assert_eq!(stats.count, 2);
        assert!(stats.p99_us >= stats.p50_us);
    }

    #[test]
    fn bad_input_reports_line_number() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let err = svc
            .handle_stream("{\"window\":0,\"wip\":[1.0]}\nnot json\n")
            .err()
            .unwrap();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn service_matches_bare_replay() {
        let stream =
            "{\"window\":0,\"wip\":[5.0,0.0,3.0,1.0]}\n{\"window\":1,\"wip\":[2.0,2.0,2.0,2.0]}\n";
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let live = svc.handle_stream(stream).unwrap();
        let batch = replay_stream(uniform().as_mut(), stream).unwrap();
        assert_eq!(live, batch);
        let live_bytes: Vec<String> = live.iter().map(DecisionRecord::to_line).collect();
        let batch_bytes: Vec<String> = batch.iter().map(DecisionRecord::to_line).collect();
        assert_eq!(live_bytes, batch_bytes);
    }

    #[test]
    fn recorded_stream_has_metrics_after_first_window() {
        let obs = record_stream(&Ensemble::msd(), 7, 3, None, uniform().as_mut());
        assert_eq!(obs.len(), 3);
        assert!(obs[0].metrics.is_none());
        assert!(obs[1].metrics.is_some());
        assert!(obs[2].metrics.is_some());
        assert_eq!(obs[0].wip.len(), 4);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_samples(&samples).unwrap();
        assert_eq!(stats.p50_us, 50.0);
        assert_eq!(stats.p99_us, 99.0);
        assert_eq!(stats.max_us, 100.0);
        assert!(LatencyStats::from_samples(&[]).is_none());
    }
}
