//! The decision loop: observations in, decisions out, telemetry on the
//! side, hot-swap between windows — now deadline-bounded and
//! overload-aware.
//!
//! The hardening invariant: **every admitted window gets exactly one
//! decision** — normal, or degraded-fallback when the primary policy
//! misses its deadline — and every refused window gets exactly one typed
//! shed reply. The service never stalls a stream waiting for a slow
//! policy and never aborts one over a malformed line.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use baselines::{Observation, Policy};
use telemetry::{Telemetry, Value};
use workflow::{BurstSpec, Ensemble};

use crate::admission::ServeCounters;
use crate::watcher::{CheckpointWatcher, SwapOutcome};
use crate::wire::{parse_observation_line, DecisionRecord, WindowObservation, MAX_LINE_BYTES};

/// A fatal serving-loop error (I/O on the transport, not bad input — bad
/// input is skipped and counted, see `serve.wire_rejected`).
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation on the serving transport failed outright.
    Io {
        /// Which operation (`"accept"`, `"write_reply"`, ...).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An I/O operation kept failing transiently until its retry budget
    /// ran out.
    RetryExhausted {
        /// Which operation.
        op: &'static str,
        /// Attempts made.
        attempts: u32,
        /// The final error.
        last: std::io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { op, source } => write!(f, "{op}: {source}"),
            ServeError::RetryExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-run decision-latency aggregates (microseconds), computed by exact
/// nearest-rank percentile over every decision the service made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of decisions measured.
    pub count: usize,
    /// Median decision latency.
    pub p50_us: f64,
    /// 99th-percentile decision latency (the <1 ms budget is stated
    /// against this).
    pub p99_us: f64,
    /// Worst decision latency.
    pub max_us: f64,
}

impl LatencyStats {
    fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |p: f64| {
            let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Some(LatencyStats {
            count: sorted.len(),
            p50_us: rank(50.0),
            p99_us: rank(99.0),
            max_us: *sorted.last().expect("non-empty"),
        })
    }
}

/// The long-running decision service: one [`Policy`] behind a window
/// stream, with per-decision latency accounting, optional checkpoint
/// hot-swap, and optional deadline-bounded degradation.
///
/// [`DecisionService::handle`] is the entire per-window hot path: poll the
/// watcher (swap happens here, *between* windows, so no request is ever
/// dropped or split across policies), run the policy, enforce the decision
/// deadline, record telemetry, return the wire record. Everything a
/// *normal* record contains is a pure function of the observation and the
/// policy — latency lives only in telemetry — which is what makes shadow
/// output byte-identical to batch replay. Degradation (deadline
/// enforcement with a fallback policy) is opt-in via
/// [`DecisionService::with_deadline`] + [`DecisionService::with_fallback`];
/// without both, behaviour is exactly the pre-hardening service.
pub struct DecisionService {
    policy: Box<dyn Policy>,
    fallback: Option<Box<dyn Policy>>,
    deadline: Option<Duration>,
    watcher: Option<CheckpointWatcher>,
    telemetry: Telemetry,
    counters: Arc<ServeCounters>,
    latencies_us: Vec<f64>,
    swaps: u64,
    swap_failures: u64,
    injected_stall: Option<Duration>,
    expected_dims: Option<usize>,
    max_line_bytes: usize,
}

impl DecisionService {
    /// Wraps a policy. Telemetry may be [`Telemetry::noop`].
    #[must_use]
    pub fn new(policy: Box<dyn Policy>, telemetry: Telemetry) -> Self {
        telemetry.gauge("serve.policy_version", policy.policy_version() as f64);
        DecisionService {
            policy,
            fallback: None,
            deadline: None,
            watcher: None,
            telemetry,
            counters: Arc::new(ServeCounters::default()),
            latencies_us: Vec::new(),
            swaps: 0,
            swap_failures: 0,
            injected_stall: None,
            expected_dims: None,
            max_line_bytes: MAX_LINE_BYTES,
        }
    }

    /// Attaches a checkpoint watcher; every subsequent window boundary
    /// polls it and atomically swaps the policy when the file changes.
    #[must_use]
    pub fn with_watcher(mut self, watcher: CheckpointWatcher) -> Self {
        self.watcher = Some(watcher);
        self
    }

    /// Sets the per-window decision deadline. A primary decision whose
    /// (effective) latency exceeds it is replaced by the fallback policy's
    /// decision, stamped `degraded: true` — provided a fallback is attached;
    /// a deadline without a fallback only records the miss.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches the degraded-mode fallback policy (conventionally
    /// [`baselines::fallback`], i.e. `wip-proportional`).
    #[must_use]
    pub fn with_fallback(mut self, fallback: Box<dyn Policy>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Shares an externally owned counter block (the multi-client server
    /// threads its reader-side counters through here so one snapshot covers
    /// the whole process).
    #[must_use]
    pub fn with_counters(mut self, counters: Arc<ServeCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// Declares the WIP dimension the serving ensemble uses; observations
    /// of any other dimension are wire-rejected before they can reach a
    /// policy (whose input layer they would otherwise violate).
    #[must_use]
    pub fn with_expected_dims(mut self, dims: usize) -> Self {
        self.expected_dims = Some(dims);
        self
    }

    /// Overrides the per-line byte bound (default [`MAX_LINE_BYTES`]).
    #[must_use]
    pub fn with_max_line_bytes(mut self, max: usize) -> Self {
        self.max_line_bytes = max;
        self
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The active policy's version.
    #[must_use]
    pub fn policy_version(&self) -> u64 {
        self.policy.policy_version()
    }

    /// Number of successful hot-swaps so far.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The shared overload/robustness counters.
    #[must_use]
    pub fn counters(&self) -> Arc<ServeCounters> {
        self.counters.clone()
    }

    /// The telemetry handle (cloneable; reader threads record through it).
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The expected WIP dimension, when declared.
    #[must_use]
    pub fn expected_dims(&self) -> Option<usize> {
        self.expected_dims
    }

    /// The per-line byte bound.
    #[must_use]
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// Chaos hook: adds `stall` to the *next* decision's effective latency
    /// (accounting-only — no real sleep), forcing a deterministic deadline
    /// miss. Consumed by the next [`DecisionService::handle`].
    pub fn inject_stall(&mut self, stall: Duration) {
        self.injected_stall = Some(stall);
    }

    fn poll_watcher(&mut self, window: usize) {
        let Some(watcher) = &mut self.watcher else {
            return;
        };
        let outcome = watcher.poll();
        let watcher_retries = watcher.take_retries();
        if watcher_retries > 0 {
            ServeCounters::bump(
                &self.counters.retries,
                watcher_retries,
                &self.telemetry,
                "serve.retries",
            );
        }
        match outcome {
            Some(SwapOutcome::Swapped { policy, version }) => {
                self.policy = policy;
                self.swaps += 1;
                self.telemetry.counter("serve.swaps", 1);
                self.telemetry.gauge("serve.policy_version", version as f64);
                self.telemetry.event(
                    "serve.swap",
                    &[
                        ("window", Value::UInt(window as u64)),
                        ("policy_version", Value::UInt(version)),
                    ],
                );
            }
            Some(SwapOutcome::Failed(e)) => {
                self.swap_failures += 1;
                self.telemetry.counter("serve.swap_failures", 1);
                self.telemetry.event(
                    "serve.swap_failed",
                    &[
                        ("window", Value::UInt(window as u64)),
                        ("error", Value::String(e.to_string())),
                    ],
                );
            }
            None => {}
        }
    }

    /// Processes one admitted window: hot-swap check, decision, deadline
    /// enforcement, telemetry. Always returns exactly one record.
    pub fn handle(&mut self, obs: &WindowObservation) -> DecisionRecord {
        self.poll_watcher(obs.window);
        let decision = self.policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        let mut effective = decision.latency;
        if let Some(stall) = self.injected_stall.take() {
            effective = effective.saturating_add(stall);
        }
        self.telemetry.counter("serve.decisions", 1);
        self.telemetry
            .observe("serve.decision_latency", effective.as_secs_f64());

        let missed = self.deadline.is_some_and(|d| effective > d);
        if missed {
            if let Some(fallback) = &mut self.fallback {
                let fb = fallback.decide(&Observation::new(
                    &obs.wip,
                    obs.metrics.as_ref(),
                    obs.window,
                ));
                ServeCounters::bump(
                    &self.counters.degraded,
                    1,
                    &self.telemetry,
                    "serve.degraded",
                );
                self.telemetry.event(
                    "serve.degraded",
                    &[
                        ("window", Value::UInt(obs.window as u64)),
                        ("latency_us", Value::Float(effective.as_secs_f64() * 1e6)),
                        (
                            "deadline_us",
                            Value::Float(
                                self.deadline.expect("missed implies set").as_secs_f64() * 1e6,
                            ),
                        ),
                    ],
                );
                return DecisionRecord::degraded(
                    obs.window,
                    fallback.name(),
                    fallback.policy_version(),
                    fb.allocations,
                );
            }
            // Deadline without fallback: note the miss, serve the late
            // decision anyway (late beats never when there is no plan B).
            self.telemetry.counter("serve.deadline_misses", 1);
        }
        // The p99 gate is stated over admitted, non-degraded decisions.
        self.latencies_us.push(effective.as_secs_f64() * 1e6);
        DecisionRecord::normal(
            obs.window,
            self.policy.name(),
            decision.policy_version,
            decision.allocations,
        )
    }

    /// Builds the shed reply for a refused window and does the shed
    /// accounting. Admission control itself lives outside the service (see
    /// [`crate::admission`]); this is the one place shed replies are
    /// minted, so counting stays consistent across the threaded server and
    /// the chaos executor.
    pub fn shed_reply(&mut self, window: usize) -> DecisionRecord {
        ServeCounters::bump(&self.counters.shed, 1, &self.telemetry, "serve.shed");
        DecisionRecord::shed(window, self.policy.name())
    }

    /// Records a wire rejection (malformed/oversized/bad-dims input line).
    pub fn note_wire_rejected(&self, lineno: usize, error: &crate::wire::WireError) {
        ServeCounters::bump(
            &self.counters.wire_rejected,
            1,
            &self.telemetry,
            "serve.wire_rejected",
        );
        self.telemetry.event(
            "serve.wire_rejected",
            &[
                ("line", Value::UInt(lineno as u64)),
                ("kind", Value::String(error.kind().to_string())),
                ("error", Value::String(error.to_string())),
            ],
        );
    }

    /// Parses and handles one wire line: `Some(record)` for an observation,
    /// `None` for blank lines and for malformed lines (which are skipped
    /// and counted under `serve.wire_rejected` — one bad line never aborts
    /// a stream).
    pub fn handle_line(&mut self, line: &str, lineno: usize) -> Option<DecisionRecord> {
        match parse_observation_line(line, self.max_line_bytes, self.expected_dims) {
            Ok(Some(obs)) => Some(self.handle(&obs)),
            Ok(None) => None,
            Err(e) => {
                self.note_wire_rejected(lineno, &e);
                None
            }
        }
    }

    /// Runs a whole JSONL stream through [`DecisionService::handle_line`],
    /// returning one record per parseable observation line. Malformed
    /// lines are skipped and counted, never fatal.
    pub fn handle_stream(&mut self, text: &str) -> Vec<DecisionRecord> {
        text.lines()
            .enumerate()
            .filter_map(|(idx, line)| self.handle_line(line, idx + 1))
            .collect()
    }

    /// Latency aggregates over every non-degraded decision so far (`None`
    /// before the first decision).
    #[must_use]
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_samples(&self.latencies_us)
    }

    /// Publishes final latency gauges (`serve.latency_p99_us` et al.),
    /// forces the overload counters to appear in the output even when zero
    /// (so `telemetry_check --require-serve` can assert their presence on
    /// healthy runs too), and flushes the telemetry sink.
    pub fn finish(&self) {
        if let Some(stats) = self.latency_stats() {
            self.telemetry.gauge("serve.latency_p50_us", stats.p50_us);
            self.telemetry.gauge("serve.latency_p99_us", stats.p99_us);
            self.telemetry.gauge("serve.latency_max_us", stats.max_us);
        }
        for name in [
            "serve.shed",
            "serve.degraded",
            "serve.wire_rejected",
            "serve.retries",
            "serve.disconnects",
            "serve.dropped_replies",
        ] {
            // Delta 0 materialises the row without changing the total.
            self.telemetry.counter(name, 0);
        }
        self.telemetry.flush();
    }
}

/// Batch-replays a JSONL observation stream through a bare policy — no
/// service machinery, no telemetry, no watcher. This is the reference the
/// shadow-mode determinism proof compares against: if the streaming
/// service's records differ from this in a single byte, the serving layer
/// changed the numerics. Malformed lines are skipped by exactly the same
/// rule the service uses, so the proof also holds for streams carrying
/// wire noise.
pub fn replay_stream(policy: &mut dyn Policy, text: &str) -> Vec<DecisionRecord> {
    let mut records = Vec::new();
    for line in text.lines() {
        let Ok(Some(obs)) = parse_observation_line(line, MAX_LINE_BYTES, None) else {
            continue;
        };
        let decision = policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        records.push(DecisionRecord::normal(
            obs.window,
            policy.name(),
            decision.policy_version,
            decision.allocations,
        ));
    }
    records
}

/// Generates a realistic observation stream by driving the cluster
/// emulator with `policy` for `windows` windows (optionally front-loading
/// `burst`), exactly as the bench harness would. Each emitted observation
/// carries the previous window's metrics, so replaying the stream gives
/// adaptive baselines the same inputs they would see live.
#[must_use]
pub fn record_stream(
    ensemble: &Ensemble,
    seed: u64,
    windows: usize,
    burst: Option<&BurstSpec>,
    policy: &mut dyn Policy,
) -> Vec<WindowObservation> {
    use microsim::{EnvConfig, MicroserviceEnv};

    let config = EnvConfig::for_ensemble(ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble.clone(), config);
    let _ = env.reset();
    if let Some(b) = burst {
        env.inject_burst(b);
    }
    let mut observations = Vec::with_capacity(windows);
    let mut previous = None;
    for window in 0..windows {
        let obs = WindowObservation {
            window,
            wip: env.state(),
            metrics: previous,
        };
        let decision = policy.decide(&Observation::new(
            &obs.wip,
            obs.metrics.as_ref(),
            obs.window,
        ));
        let out = env.step(&decision.allocations);
        previous = Some(out.metrics);
        observations.push(obs);
    }
    observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{by_name, PolicyConfig};
    use std::sync::atomic::Ordering;

    fn uniform() -> Box<dyn Policy> {
        by_name("uniform", &PolicyConfig::new(&Ensemble::msd())).unwrap()
    }

    #[test]
    fn service_emits_one_record_per_line() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let stream = "{\"window\":0,\"wip\":[1.0,2.0,3.0,4.0]}\n\n{\"window\":1,\"wip\":[0.0,0.0,0.0,0.0]}\n";
        let records = svc.handle_stream(stream);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].window, 0);
        assert_eq!(records[1].window, 1);
        assert_eq!(records[0].policy, "uniform");
        let stats = svc.latency_stats().unwrap();
        assert_eq!(stats.count, 2);
        assert!(stats.p99_us >= stats.p50_us);
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted_not_fatal() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let stream = "{\"window\":0,\"wip\":[1.0]}\nnot json\n{\"window\":1,\"wip\":[2.0]}\n";
        let records = svc.handle_stream(stream);
        assert_eq!(records.len(), 2, "good lines around the bad one survive");
        assert_eq!(records[0].window, 0);
        assert_eq!(records[1].window, 1);
        assert_eq!(svc.counters().wire_rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wrong_dimension_observations_are_rejected_when_dims_declared() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop()).with_expected_dims(4);
        let stream = "{\"window\":0,\"wip\":[1.0,2.0]}\n{\"window\":1,\"wip\":[1.0,2.0,3.0,4.0]}\n";
        let records = svc.handle_stream(stream);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].window, 1);
        assert_eq!(svc.counters().wire_rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn service_matches_bare_replay() {
        let stream =
            "{\"window\":0,\"wip\":[5.0,0.0,3.0,1.0]}\n{\"window\":1,\"wip\":[2.0,2.0,2.0,2.0]}\n";
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let live = svc.handle_stream(stream);
        let batch = replay_stream(uniform().as_mut(), stream);
        assert_eq!(live, batch);
        let live_bytes: Vec<String> = live.iter().map(DecisionRecord::to_line).collect();
        let batch_bytes: Vec<String> = batch.iter().map(DecisionRecord::to_line).collect();
        assert_eq!(live_bytes, batch_bytes);
    }

    #[test]
    fn replay_skips_malformed_lines_by_the_same_rule_as_the_service() {
        let stream = "garbage\n{\"window\":0,\"wip\":[5.0,0.0,3.0,1.0]}\n{bad\n";
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let live = svc.handle_stream(stream);
        let batch = replay_stream(uniform().as_mut(), stream);
        assert_eq!(live, batch);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn injected_stall_past_deadline_degrades_to_fallback() {
        let cfg = PolicyConfig::new(&Ensemble::msd());
        let mut svc = DecisionService::new(by_name("uniform", &cfg).unwrap(), Telemetry::noop())
            .with_deadline(Duration::from_micros(1000))
            .with_fallback(baselines::fallback(&cfg));
        let obs = WindowObservation {
            window: 3,
            wip: vec![8.0, 0.0, 1.0, 1.0],
            metrics: None,
        };
        // Normal window: primary answers.
        let normal = svc.handle(&obs);
        assert!(!normal.degraded);
        assert_eq!(normal.policy, "uniform");

        // Stalled window: deterministic deadline miss, fallback answers.
        svc.inject_stall(Duration::from_millis(50));
        let degraded = svc.handle(&obs);
        assert!(degraded.degraded);
        assert_eq!(degraded.policy, baselines::FALLBACK_POLICY);
        assert!(degraded.is_actionable());
        assert!(!degraded.allocations.is_empty());
        assert_eq!(svc.counters().degraded.load(Ordering::Relaxed), 1);

        // The degraded allocation is the fallback's own answer.
        let mut bare = baselines::fallback(&cfg);
        let expect = bare.decide(&Observation::new(&obs.wip, None, obs.window));
        assert_eq!(degraded.allocations, expect.allocations);

        // Degraded windows stay out of the p99 gate's sample set.
        assert_eq!(svc.latency_stats().unwrap().count, 1);

        // The stall is one-shot: the next window is normal again.
        let after = svc.handle(&obs);
        assert!(!after.degraded);
    }

    #[test]
    fn deadline_without_fallback_serves_late_and_counts_the_miss() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop())
            .with_deadline(Duration::from_micros(1));
        svc.inject_stall(Duration::from_millis(10));
        let obs = WindowObservation {
            window: 0,
            wip: vec![1.0, 1.0, 1.0, 1.0],
            metrics: None,
        };
        let record = svc.handle(&obs);
        assert!(
            !record.degraded,
            "no fallback attached, late decision served"
        );
        assert_eq!(record.policy, "uniform");
    }

    #[test]
    fn shed_reply_counts_and_carries_the_policy_name() {
        let mut svc = DecisionService::new(uniform(), Telemetry::noop());
        let shed = svc.shed_reply(9);
        assert!(!shed.is_actionable());
        assert_eq!(shed.policy, "uniform");
        assert!(shed.allocations.is_empty());
        assert_eq!(svc.counters().shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn finish_materialises_zero_counters_for_the_checker() {
        let sink = telemetry::JsonlSink::in_memory();
        let svc = DecisionService::new(uniform(), Telemetry::new(sink.clone()));
        svc.finish();
        let text = String::from_utf8(sink.take_output()).unwrap();
        for name in [
            "serve.shed",
            "serve.degraded",
            "serve.wire_rejected",
            "serve.retries",
        ] {
            assert!(
                text.contains(&format!("\"{name}\"")),
                "missing {name} in {text}"
            );
        }
    }

    #[test]
    fn recorded_stream_has_metrics_after_first_window() {
        let obs = record_stream(&Ensemble::msd(), 7, 3, None, uniform().as_mut());
        assert_eq!(obs.len(), 3);
        assert!(obs[0].metrics.is_none());
        assert!(obs[1].metrics.is_some());
        assert!(obs[2].metrics.is_some());
        assert_eq!(obs[0].wip.len(), 4);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_samples(&samples).unwrap();
        assert_eq!(stats.p50_us, 50.0);
        assert_eq!(stats.p99_us, 99.0);
        assert_eq!(stats.max_us, 100.0);
        assert!(LatencyStats::from_samples(&[]).is_none());
    }
}
