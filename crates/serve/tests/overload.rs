//! Threaded integration tests for the multi-client serving loop: real TCP
//! sockets, concurrent clients, overload, and abrupt disconnects.
//!
//! The single-threaded chaos harness (`serve::chaos`) proves byte-level
//! determinism; these tests prove the *threaded* properties that a
//! deterministic schedule cannot — every admitted window is answered even
//! under flood, shedding engages instead of blocking, and a client that
//! vanishes mid-stream never takes the server down.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use baselines::{by_name, Decision, Observation, Policy, PolicyConfig};
use serve::{
    record_stream, replay_stream, AdmissionConfig, DecisionService, Listener, ServerConfig,
    ShedPolicy,
};
use telemetry::Telemetry;
use workflow::Ensemble;

/// Wraps a policy with a per-decision sleep so a flood test can reliably
/// outpace the decision thread and force the admission queue to overflow.
struct SlowPolicy {
    inner: Box<dyn Policy>,
    delay: Duration,
}

impl Policy for SlowPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn consumer_budget(&self) -> usize {
        self.inner.consumer_budget()
    }
    fn policy_version(&self) -> u64 {
        self.inner.policy_version()
    }
    fn decide(&mut self, obs: &Observation) -> Decision {
        std::thread::sleep(self.delay);
        self.inner.decide(obs)
    }
}

fn observation_lines(windows: usize) -> Vec<String> {
    let ensemble = Ensemble::msd();
    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
    record_stream(&ensemble, 11, windows, None, driver.as_mut())
        .iter()
        .map(|obs| serde_json::to_string(obs).unwrap())
        .collect()
}

fn uniform_service() -> DecisionService {
    let cfg = PolicyConfig::new(&Ensemble::msd());
    DecisionService::new(by_name("uniform", &cfg).unwrap(), Telemetry::noop())
}

/// Sends each line and waits for its reply before sending the next, so the
/// client can never overflow admission; returns the reply lines.
fn lockstep_client(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut replies = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        replies.push(reply.trim_end().to_string());
    }
    writer.shutdown(Shutdown::Write).unwrap();
    replies
}

#[test]
fn lockstep_clients_match_batch_replay() {
    let lines = observation_lines(12);
    let (a_lines, b_lines): (Vec<_>, Vec<_>) = lines
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let a_lines: Vec<String> = a_lines.into_iter().map(|(_, l)| l).collect();
    let b_lines: Vec<String> = b_lines.into_iter().map(|(_, l)| l).collect();

    let listener = Listener::bind("tcp:127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServerConfig {
        clients: 2,
        ..ServerConfig::default()
    };

    let server = std::thread::spawn(move || {
        let mut svc = uniform_service();
        let report = serve_clients_owned(&listener, &mut svc, &config);
        (report, svc.counters().snapshot())
    });
    let (a_replies, b_replies) = {
        let a = std::thread::spawn({
            let a_lines = a_lines.clone();
            move || lockstep_client(addr, &a_lines)
        });
        let b = std::thread::spawn({
            let b_lines = b_lines.clone();
            move || lockstep_client(addr, &b_lines)
        });
        (a.join().unwrap(), b.join().unwrap())
    };
    let (report, counters) = server.join().unwrap();
    let report = report.unwrap();

    assert_eq!(report.clients, 2);
    assert_eq!(report.decided, 12);
    assert_eq!(counters.shed, 0, "lockstep clients must never be shed");

    // Uniform is stateless, so each client's reply stream must be
    // byte-identical to a batch replay of just that client's lines —
    // regardless of how the two streams interleaved on the decision thread.
    let cfg = PolicyConfig::new(&Ensemble::msd());
    for (sent, got) in [(&a_lines, &a_replies), (&b_lines, &b_replies)] {
        let mut policy = by_name("uniform", &cfg).unwrap();
        let expect: Vec<String> = replay_stream(policy.as_mut(), &sent.join("\n"))
            .iter()
            .map(serve::DecisionRecord::to_line)
            .collect();
        assert_eq!(got, &expect);
    }
}

// serve_clients takes &mut DecisionService; tiny shim so the server thread
// closure above stays readable.
fn serve_clients_owned(
    listener: &Listener,
    svc: &mut DecisionService,
    config: &ServerConfig,
) -> Result<serve::ServerReport, serve::ServeError> {
    serve::serve_clients(listener, svc, config)
}

#[test]
fn flood_sheds_but_answers_every_window() {
    const WINDOWS: usize = 80;
    let lines = observation_lines(WINDOWS);

    let listener = Listener::bind("tcp:127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_inflight: 2,
            shed: ShedPolicy::Reject,
        },
        clients: 1,
        ..ServerConfig::default()
    };

    let server = std::thread::spawn(move || {
        let cfg = PolicyConfig::new(&Ensemble::msd());
        let slow = SlowPolicy {
            inner: by_name("uniform", &cfg).unwrap(),
            delay: Duration::from_millis(2),
        };
        let mut svc = DecisionService::new(Box::new(slow), Telemetry::noop());
        let report = serve_clients_owned(&listener, &mut svc, &config);
        (report, svc.counters().snapshot())
    });

    // Blast every window without reading a single reply, then close the
    // write half and drain.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for line in &lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    let mut replies = Vec::new();
    loop {
        let mut reply = String::new();
        if reader.read_line(&mut reply).unwrap() == 0 {
            break;
        }
        replies.push(reply.trim_end().to_string());
    }

    let (report, counters) = server.join().unwrap();
    let report = report.unwrap();

    // Liveness under overload: every window sent gets exactly one reply —
    // a decision or a typed shed — and the flood must actually have shed.
    assert_eq!(replies.len(), WINDOWS, "one reply per window, shed or not");
    assert!(counters.shed > 0, "flood past max_inflight=2 must shed");
    assert_eq!(report.decided + counters.shed, WINDOWS as u64);
    let shed_replies = replies
        .iter()
        .filter(|r| r.contains("\"status\":\"shed\""))
        .count() as u64;
    assert_eq!(shed_replies, counters.shed);
    for reply in &replies {
        let record: serve::DecisionRecord = serde_json::from_str(reply).unwrap();
        if record.is_actionable() {
            assert!(!record.allocations.is_empty());
        } else {
            assert!(record.allocations.is_empty(), "shed replies carry no work");
        }
    }
}

#[test]
fn client_vanishing_mid_stream_does_not_take_the_server_down() {
    let lines = observation_lines(8);

    let listener = Listener::bind("tcp:127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServerConfig {
        clients: 2,
        ..ServerConfig::default()
    };

    let server = std::thread::spawn(move || {
        let mut svc = uniform_service();
        let report = serve_clients_owned(&listener, &mut svc, &config);
        (report, svc.counters().snapshot())
    });

    // Client 1 sends a few windows and vanishes without ever reading.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in &lines[..3] {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.flush().unwrap();
        // Dropped here: the socket closes while replies may still be in
        // flight. The server must absorb any resulting write failures.
    }

    // Client 2 arrives afterwards and must be served normally.
    let survivor: Vec<String> = lockstep_client(addr, &lines[3..]);

    let (report, _counters) = server.join().unwrap();
    let report = report.unwrap();
    assert_eq!(report.clients, 2);
    assert_eq!(survivor.len(), 5);
    assert!(
        report.decided >= 5,
        "the surviving client's windows decided"
    );
    for reply in &survivor {
        let record: serve::DecisionRecord = serde_json::from_str(reply).unwrap();
        assert!(record.is_actionable());
    }
}

#[test]
fn unix_socket_round_trip() {
    let path = std::env::temp_dir().join(format!("miras_overload_{}.sock", std::process::id()));
    let listener = Listener::bind(&format!("unix:{}", path.display())).unwrap();
    let lines = observation_lines(4);

    let server = std::thread::spawn(move || {
        let mut svc = uniform_service();
        serve_clients_owned(&listener, &mut svc, &ServerConfig::default()).unwrap()
    });

    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut replies = Vec::new();
    for line in &lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        replies.push(reply.trim_end().to_string());
    }
    writer.shutdown(Shutdown::Write).unwrap();

    let report = server.join().unwrap();
    assert_eq!(report.decided, 4);
    assert_eq!(replies.len(), 4);
}
