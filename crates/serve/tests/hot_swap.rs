//! Checkpoint hot-swap correctness: a mid-stream swap produces exactly the
//! decisions of stopping the service, cold-restarting on the new
//! checkpoint, and replaying the remainder — and a corrupt swap never
//! dislodges the serving policy.

use std::path::PathBuf;

use baselines::{by_name, PolicyConfig};
use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
use serve::{
    load_policy, record_stream, replay_stream, CheckpointWatcher, DecisionRecord, DecisionService,
};
use telemetry::Telemetry;
use workflow::Ensemble;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "miras_serve_hotswap_{name}_{}.json",
        std::process::id()
    ))
}

/// Trains a smoke-scale MIRAS run and saves checkpoints after iteration 1
/// (`a`) and iteration 2 (`b`).
fn two_checkpoints(tag: &str) -> (PathBuf, PathBuf) {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(5);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(5));
    let a = temp_path(&format!("{tag}_a"));
    let b = temp_path(&format!("{tag}_b"));
    trainer.run_iteration(&mut env);
    trainer.save_checkpoint(&env, &a).unwrap();
    trainer.run_iteration(&mut env);
    trainer.save_checkpoint(&env, &b).unwrap();
    (a, b)
}

/// A short recorded observation stream (uniform policy driving the
/// emulator, so the WIP trajectories are realistic).
fn stream(windows: usize) -> String {
    let ensemble = Ensemble::msd();
    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
    record_stream(&ensemble, 11, windows, None, driver.as_mut())
        .iter()
        .map(|obs| serde_json::to_string(obs).unwrap() + "\n")
        .collect()
}

fn lines(records: &[DecisionRecord]) -> Vec<String> {
    records.iter().map(DecisionRecord::to_line).collect()
}

#[test]
fn mid_stream_swap_equals_cold_restart_and_replay_of_remainder() {
    let (ckpt_a, ckpt_b) = two_checkpoints("swap");
    let serving = temp_path("swap_live");
    std::fs::copy(&ckpt_a, &serving).unwrap();

    let text = stream(8);
    let all: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    let (head, tail) = all.split_at(4);

    // Live run: serve 4 windows from checkpoint A, swap to B between
    // windows, serve the remaining 4.
    let (policy, version) = load_policy(&serving).unwrap();
    assert_eq!(version, 1, "checkpoint A was saved after iteration 1");
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(serving.clone()));
    let mut live = svc.handle_stream(&head.concat()).unwrap();
    std::fs::copy(&ckpt_b, &serving).unwrap();
    live.extend(svc.handle_stream(&tail.concat()).unwrap());
    assert_eq!(svc.swaps(), 1, "exactly one hot-swap");
    assert_eq!(svc.policy_version(), 2, "checkpoint B is iteration 2");
    assert_eq!(live.len(), 8, "no decision dropped across the swap");

    // Reference: cold runs — A over the head, a fresh restart on B over
    // the remainder.
    let (mut cold_a, _) = load_policy(&ckpt_a).unwrap();
    let mut reference = replay_stream(cold_a.as_mut(), &head.concat()).unwrap();
    let (mut cold_b, _) = load_policy(&ckpt_b).unwrap();
    reference.extend(replay_stream(cold_b.as_mut(), &tail.concat()).unwrap());

    assert_eq!(lines(&live), lines(&reference));
    assert!(live[..4].iter().all(|r| r.policy_version == 1));
    assert!(live[4..].iter().all(|r| r.policy_version == 2));

    for p in [ckpt_a, ckpt_b, serving] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn corrupt_swap_keeps_the_old_policy_until_a_good_one_appears() {
    let (ckpt_a, ckpt_b) = two_checkpoints("corrupt");
    let serving = temp_path("corrupt_live");
    std::fs::copy(&ckpt_a, &serving).unwrap();

    let text = stream(6);
    let all: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();

    let (policy, _) = load_policy(&serving).unwrap();
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(serving.clone()));
    let mut records = svc.handle_stream(&all[..2].concat()).unwrap();

    // A corrupt file lands on the watched path: the service must keep
    // deciding with the old policy.
    std::fs::write(&serving, "{ this is not a checkpoint").unwrap();
    records.extend(svc.handle_stream(&all[2..4].concat()).unwrap());
    assert_eq!(svc.swaps(), 0);
    assert_eq!(svc.policy_version(), 1, "old policy still serving");
    assert!(records.iter().all(|r| r.policy_version == 1));

    // A good checkpoint replaces it: the swap goes through.
    std::fs::copy(&ckpt_b, &serving).unwrap();
    let rest = svc.handle_stream(&all[4..].concat()).unwrap();
    assert_eq!(svc.swaps(), 1);
    assert!(rest.iter().all(|r| r.policy_version == 2));

    for p in [ckpt_a, ckpt_b, serving] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn raw_agent_json_loads_as_version_zero() {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(3);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(3));
    trainer.run_iteration(&mut env);
    let path = temp_path("raw_agent");
    std::fs::write(&path, serde_json::to_string(&trainer.agent()).unwrap()).unwrap();

    let (policy, version) = load_policy(&path).unwrap();
    assert_eq!(version, 0, "raw agents are unversioned");
    assert_eq!(policy.name(), "miras");
    let _ = std::fs::remove_file(path);
}
