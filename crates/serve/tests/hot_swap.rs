//! Checkpoint hot-swap correctness: a mid-stream swap produces exactly the
//! decisions of stopping the service, cold-restarting on the new
//! checkpoint, and replaying the remainder — and a corrupt swap never
//! dislodges the serving policy.

use std::path::PathBuf;

use baselines::{by_name, PolicyConfig};
use microsim::{EnvConfig, MicroserviceEnv};
use miras_core::{ClusterEnvAdapter, MirasConfig, MirasTrainer};
use serve::{
    load_policy, record_stream, replay_stream, CheckpointWatcher, DecisionRecord, DecisionService,
};
use telemetry::Telemetry;
use workflow::Ensemble;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "miras_serve_hotswap_{name}_{}.json",
        std::process::id()
    ))
}

/// Trains a smoke-scale MIRAS run and saves checkpoints after iteration 1
/// (`a`) and iteration 2 (`b`).
fn two_checkpoints(tag: &str) -> (PathBuf, PathBuf) {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(5);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(5));
    let a = temp_path(&format!("{tag}_a"));
    let b = temp_path(&format!("{tag}_b"));
    trainer.run_iteration(&mut env);
    trainer.save_checkpoint(&env, &a).unwrap();
    trainer.run_iteration(&mut env);
    trainer.save_checkpoint(&env, &b).unwrap();
    (a, b)
}

/// A short recorded observation stream (uniform policy driving the
/// emulator, so the WIP trajectories are realistic).
fn stream(windows: usize) -> String {
    let ensemble = Ensemble::msd();
    let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
    record_stream(&ensemble, 11, windows, None, driver.as_mut())
        .iter()
        .map(|obs| serde_json::to_string(obs).unwrap() + "\n")
        .collect()
}

fn lines(records: &[DecisionRecord]) -> Vec<String> {
    records.iter().map(DecisionRecord::to_line).collect()
}

#[test]
fn mid_stream_swap_equals_cold_restart_and_replay_of_remainder() {
    let (ckpt_a, ckpt_b) = two_checkpoints("swap");
    let serving = temp_path("swap_live");
    std::fs::copy(&ckpt_a, &serving).unwrap();

    let text = stream(8);
    let all: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    let (head, tail) = all.split_at(4);

    // Live run: serve 4 windows from checkpoint A, swap to B between
    // windows, serve the remaining 4.
    let (policy, version) = load_policy(&serving).unwrap();
    assert_eq!(version, 1, "checkpoint A was saved after iteration 1");
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(serving.clone()));
    let mut live = svc.handle_stream(&head.concat());
    std::fs::copy(&ckpt_b, &serving).unwrap();
    live.extend(svc.handle_stream(&tail.concat()));
    assert_eq!(svc.swaps(), 1, "exactly one hot-swap");
    assert_eq!(svc.policy_version(), 2, "checkpoint B is iteration 2");
    assert_eq!(live.len(), 8, "no decision dropped across the swap");

    // Reference: cold runs — A over the head, a fresh restart on B over
    // the remainder.
    let (mut cold_a, _) = load_policy(&ckpt_a).unwrap();
    let mut reference = replay_stream(cold_a.as_mut(), &head.concat());
    let (mut cold_b, _) = load_policy(&ckpt_b).unwrap();
    reference.extend(replay_stream(cold_b.as_mut(), &tail.concat()));

    assert_eq!(lines(&live), lines(&reference));
    assert!(live[..4].iter().all(|r| r.policy_version == 1));
    assert!(live[4..].iter().all(|r| r.policy_version == 2));

    for p in [ckpt_a, ckpt_b, serving] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn corrupt_swap_keeps_the_old_policy_until_a_good_one_appears() {
    let (ckpt_a, ckpt_b) = two_checkpoints("corrupt");
    let serving = temp_path("corrupt_live");
    std::fs::copy(&ckpt_a, &serving).unwrap();

    let text = stream(6);
    let all: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();

    let (policy, _) = load_policy(&serving).unwrap();
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(serving.clone()));
    let mut records = svc.handle_stream(&all[..2].concat());

    // A corrupt file lands on the watched path: the service must keep
    // deciding with the old policy.
    std::fs::write(&serving, "{ this is not a checkpoint").unwrap();
    records.extend(svc.handle_stream(&all[2..4].concat()));
    assert_eq!(svc.swaps(), 0);
    assert_eq!(svc.policy_version(), 1, "old policy still serving");
    assert!(records.iter().all(|r| r.policy_version == 1));

    // A good checkpoint replaces it: the swap goes through.
    std::fs::copy(&ckpt_b, &serving).unwrap();
    let rest = svc.handle_stream(&all[4..].concat());
    assert_eq!(svc.swaps(), 1);
    assert!(rest.iter().all(|r| r.policy_version == 2));

    for p in [ckpt_a, ckpt_b, serving] {
        let _ = std::fs::remove_file(p);
    }
}

/// Regression test for the `(mtime, len)` fingerprint race: a checkpoint
/// rewritten with *different bytes of the same length* and a forced
/// *identical mtime* must still trigger a swap, because the fingerprint
/// also hashes the content. Before the checksum, this exact scenario —
/// two checkpoint saves within the filesystem's mtime granularity, fixed
/// schema so equal length — left the stale policy serving silently.
#[test]
fn same_mtime_same_len_rewrite_still_swaps() {
    let (ckpt_a, ckpt_b) = two_checkpoints("fingerprint_race");
    let serving = temp_path("fingerprint_race_live");

    // Pad both checkpoints with trailing whitespace (JSON-harmless) to the
    // same byte length.
    let mut bytes_a = std::fs::read(&ckpt_a).unwrap();
    let mut bytes_b = std::fs::read(&ckpt_b).unwrap();
    let target = bytes_a.len().max(bytes_b.len()) + 4;
    bytes_a.resize(target, b' ');
    bytes_b.resize(target, b' ');
    assert_eq!(bytes_a.len(), bytes_b.len());
    assert_ne!(bytes_a, bytes_b, "same length, different content");

    std::fs::write(&serving, &bytes_a).unwrap();
    let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
    let file = std::fs::File::options()
        .append(true)
        .open(&serving)
        .unwrap();
    file.set_modified(stamp).unwrap();
    drop(file);

    let (policy, version) = load_policy(&serving).unwrap();
    assert_eq!(version, 1);
    let mut svc = DecisionService::new(policy, Telemetry::noop())
        .with_watcher(CheckpointWatcher::new_deployed(serving.clone()));

    let text = stream(4);
    let all: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    let head = svc.handle_stream(&all[..2].concat());
    assert!(head.iter().all(|r| r.policy_version == 1));

    // The adversarial rewrite: same length, same (forced) mtime.
    std::fs::write(&serving, &bytes_b).unwrap();
    let file = std::fs::File::options()
        .append(true)
        .open(&serving)
        .unwrap();
    file.set_modified(stamp).unwrap();
    drop(file);
    let meta = std::fs::metadata(&serving).unwrap();
    assert_eq!(meta.modified().unwrap(), stamp, "mtime pinned");
    assert_eq!(meta.len() as usize, target, "length pinned");

    let tail = svc.handle_stream(&all[2..].concat());
    assert_eq!(svc.swaps(), 1, "content checksum caught the rewrite");
    assert_eq!(svc.policy_version(), 2);
    assert!(tail.iter().all(|r| r.policy_version == 2));

    for p in [ckpt_a, ckpt_b, serving] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn raw_agent_json_loads_as_version_zero() {
    let ensemble = Ensemble::msd();
    let env_config = EnvConfig::for_ensemble(&ensemble).with_seed(3);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, env_config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(3));
    trainer.run_iteration(&mut env);
    let path = temp_path("raw_agent");
    std::fs::write(&path, serde_json::to_string(&trainer.agent()).unwrap()).unwrap();

    let (policy, version) = load_policy(&path).unwrap();
    assert_eq!(version, 0, "raw agents are unversioned");
    assert_eq!(policy.name(), "miras");
    let _ = std::fs::remove_file(path);
}
