//! Property tests for the chaos harness: over arbitrary seeds and fault
//! mixes, the serving loop never panics, every robustness invariant holds,
//! replays are byte-deterministic, and shedding changes *which* windows are
//! decided — never *what* is decided.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

use baselines::{by_name, fallback, PolicyConfig};
use proptest::prelude::*;
use serve::chaos::{generate_schedule, run_schedule, verify, ChaosConfig};
use serve::{replay_stream, AdmissionConfig, DecisionService, ShedPolicy};
use telemetry::Telemetry;
use workflow::Ensemble;

/// Small bound so the oversized corpus entry is cheap to build per case.
const MAX_LINE_BYTES: usize = 2048;

/// Far above real wip-proportional latency, far below injected stalls
/// (>= 1s) — degradation is a pure function of the schedule.
const DEADLINE: Duration = Duration::from_millis(100);

fn base_lines() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| {
        let ensemble = Ensemble::msd();
        let mut driver = by_name("uniform", &PolicyConfig::new(&ensemble)).unwrap();
        serve::record_stream(&ensemble, 5, 30, None, driver.as_mut())
            .iter()
            .map(|obs| serde_json::to_string(obs).unwrap())
            .collect()
    })
}

fn hardened_service() -> DecisionService {
    let cfg = PolicyConfig::new(&Ensemble::msd());
    DecisionService::new(
        by_name("wip-proportional", &cfg).unwrap(),
        Telemetry::noop(),
    )
    .with_deadline(DEADLINE)
    .with_fallback(fallback(&cfg))
    .with_expected_dims(Ensemble::msd().num_task_types())
    .with_max_line_bytes(MAX_LINE_BYTES)
}

fn chaos_config(seed: u64, clients: usize, burst: usize, rates: (f64, f64, f64)) -> ChaosConfig {
    let (malformed, disconnect, stall) = rates;
    ChaosConfig {
        seed,
        clients,
        malformed,
        disconnect,
        stall,
        corrupt: 0.0, // no watcher attached in the property suite
        burst,
    }
}

fn admission(max_inflight: usize, drop_oldest: bool) -> AdmissionConfig {
    AdmissionConfig {
        max_inflight,
        shed: if drop_oldest {
            ShedPolicy::DropOldest
        } else {
            ShedPolicy::Reject
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the seed, fault mix, queue bound, and shed policy: no
    /// panic, and every machine-checked invariant of `chaos::verify` holds
    /// (exactly one reply per delivered valid window, rejected lines all
    /// counted, counters coherent with the reply stream, shed replies
    /// inert).
    #[test]
    fn invariants_hold_for_any_seed(
        seed in 0u64..u64::MAX,
        clients in 1usize..4,
        burst in 1usize..5,
        max_inflight in 1usize..12,
        drop_oldest_bit in 0u8..2,
        (malformed, disconnect, stall) in (0.0f64..0.35, 0.0f64..0.15, 0.0f64..0.25),
    ) {
        let drop_oldest = drop_oldest_bit == 1;
        let config = chaos_config(seed, clients, burst, (malformed, disconnect, stall));
        let schedule = generate_schedule(&config, base_lines(), MAX_LINE_BYTES);
        let mut svc = hardened_service();
        let outcome = run_schedule(&mut svc, admission(max_inflight, drop_oldest), &schedule, None);
        if let Err(violation) = verify(&outcome) {
            prop_assert!(false, "seed {}: {}", seed, violation);
        }
    }

    /// Replaying the same schedule on a fresh service reproduces the
    /// delivered transcripts byte-for-byte and the same counters.
    #[test]
    fn replay_is_byte_deterministic(
        seed in 0u64..u64::MAX,
        clients in 1usize..4,
        burst in 1usize..5,
        max_inflight in 1usize..12,
        drop_oldest_bit in 0u8..2,
    ) {
        let drop_oldest = drop_oldest_bit == 1;
        let config = chaos_config(seed, clients, burst, (0.15, 0.05, 0.10));
        let schedule = generate_schedule(&config, base_lines(), MAX_LINE_BYTES);
        let adm = admission(max_inflight, drop_oldest);

        let mut first = hardened_service();
        let a = run_schedule(&mut first, adm, &schedule, None);
        let mut second = hardened_service();
        let b = run_schedule(&mut second, adm, &schedule, None);

        prop_assert_eq!(a.transcript(clients), b.transcript(clients));
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.delivered_valid, b.delivered_valid);
        prop_assert_eq!(a.delivered_rejected, b.delivered_rejected);
    }

    /// Admission-control determinism: overload changes *which* windows get
    /// decided, never *what* is decided. Every actionable reply under any
    /// queue bound carries exactly the allocations a bare batch replay
    /// produces for that window.
    #[test]
    fn shedding_never_changes_admitted_decisions(
        seed in 0u64..u64::MAX,
        burst in 2usize..6,
        max_inflight in 1usize..8,
        drop_oldest_bit in 0u8..2,
    ) {
        // Overload only — no malformed lines, stalls, or disconnects, so
        // every reply is either a clean decision or a typed shed.
        let drop_oldest = drop_oldest_bit == 1;
        let config = chaos_config(seed, 2, burst, (0.0, 0.0, 0.0));
        let schedule = generate_schedule(&config, base_lines(), MAX_LINE_BYTES);
        let mut svc = hardened_service();
        let outcome = run_schedule(&mut svc, admission(max_inflight, drop_oldest), &schedule, None);

        let cfg = PolicyConfig::new(&Ensemble::msd());
        let mut bare = by_name("wip-proportional", &cfg).unwrap();
        let expected: HashMap<usize, Vec<usize>> =
            replay_stream(bare.as_mut(), &base_lines().join("\n"))
                .into_iter()
                .map(|r| (r.window, r.allocations))
                .collect();

        let mut decided = 0usize;
        for reply in &outcome.replies {
            if !reply.record.is_actionable() {
                continue;
            }
            decided += 1;
            prop_assert!(!reply.record.degraded, "no stalls were injected");
            let want = expected
                .get(&reply.record.window)
                .expect("every admitted window came from the base stream");
            prop_assert_eq!(&reply.record.allocations, want);
        }
        prop_assert!(decided > 0, "some windows must have been admitted");
    }
}
