//! The unified decision surface: the [`Policy`] trait and the string-keyed
//! policy registry.
//!
//! [`Allocator`] is the *algorithm* interface — observation in, consumer
//! counts out. [`Policy`] is the *deployment* interface layered on top of
//! it: every decision comes back as a typed [`Decision`] carrying the
//! allocation, the measured decision latency, and the version of the policy
//! that produced it. The serving loop (`miras-serve`), the evaluation grid,
//! the resilience benchmark, and the CLI all construct policies through one
//! API — [`by_name`] (also reachable as `<dyn Policy>::by_name`) over a
//! [`PolicyConfig`] — instead of hand-rolling per-binary `match` arms.
//!
//! # Examples
//!
//! ```
//! use baselines::{by_name, Observation, PolicyConfig};
//! use workflow::Ensemble;
//!
//! let cfg = PolicyConfig::new(&Ensemble::msd());
//! let mut policy = by_name("uniform", &cfg).unwrap();
//! let decision = policy.decide(&Observation::first(&[3.0, 1.0, 0.0, 2.0]));
//! assert_eq!(decision.allocations.iter().sum::<usize>(), 14);
//! assert_eq!(decision.policy_version, 0);
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use miras_core::MirasAgent;
use rl::Ddpg;
use workflow::Ensemble;

use crate::{
    Allocator, DrsAllocator, HeftAllocator, ModelFreeDdpg, MonadAllocator, Observation,
    UniformAllocator, WipProportionalAllocator,
};

/// One typed allocation decision.
///
/// Produced by [`Policy::decide`]; the latency is measured around the
/// underlying allocation computation only (not I/O or telemetry), which is
/// what the serving loop's <1 ms/decision budget is stated against. The
/// latency is observability-only — it never appears in the wire-format
/// decision record, so decision streams stay byte-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Consumer counts per task type; respects the policy's budget.
    pub allocations: Vec<usize>,
    /// Wall-clock time the decision took to compute.
    pub latency: Duration,
    /// Version of the policy that produced the decision (0 for unversioned
    /// policies; checkpoint-loaded policies stamp the checkpoint's
    /// iteration here, so hot-swaps are visible in the decision stream).
    pub policy_version: u64,
}

/// A deployable resource-allocation policy: the object-safe decision
/// surface every harness (serving loop, evaluation grid, CLI) runs against.
///
/// Obtain one from the registry with [`by_name`] or wrap any [`Allocator`]
/// in an [`AllocatorPolicy`].
pub trait Policy: Send {
    /// Short name used in reports and decision records (matches
    /// [`Allocator::name`] for wrapped allocators).
    fn name(&self) -> &str;

    /// The total-consumer constraint the policy was configured with.
    fn consumer_budget(&self) -> usize;

    /// The policy's version (0 when unversioned). Checkpoint hot-swap bumps
    /// this, so consumers of a decision stream can attribute every decision
    /// to the policy revision that made it.
    fn policy_version(&self) -> u64;

    /// Makes one window's decision.
    fn decide(&mut self, obs: &Observation) -> Decision;
}

impl dyn Policy {
    /// Builds a policy from the string-keyed registry — see [`by_name`].
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] for unknown names or missing artifacts.
    pub fn by_name(name: &str, config: &PolicyConfig) -> Result<Box<dyn Policy>, PolicyError> {
        by_name(name, config)
    }
}

/// Adapts any [`Allocator`] into a [`Policy`], measuring per-decision
/// latency and stamping a fixed version.
#[derive(Debug, Clone)]
pub struct AllocatorPolicy<A> {
    inner: A,
    version: u64,
}

impl<A: Allocator + Send> AllocatorPolicy<A> {
    /// Wraps an allocator as an unversioned (version 0) policy.
    pub fn new(inner: A) -> Self {
        AllocatorPolicy { inner, version: 0 }
    }

    /// Sets the version stamped on every decision (e.g. the training
    /// iteration of the checkpoint the allocator was loaded from).
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Read access to the wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Allocator + Send> Policy for AllocatorPolicy<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn consumer_budget(&self) -> usize {
        self.inner.consumer_budget()
    }

    fn policy_version(&self) -> u64 {
        self.version
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let start = Instant::now();
        let allocations = self.inner.allocate(obs);
        Decision {
            allocations,
            latency: start.elapsed(),
            policy_version: self.version,
        }
    }
}

/// Everything the registry may need to construct a policy.
///
/// Built once per harness from the ensemble; trained artifacts (the MIRAS
/// agent, the model-free DDPG agent) are attached only by harnesses that
/// run the learned policies.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    ensemble: Ensemble,
    consumer_budget: usize,
    window_secs: f64,
    miras_agent: Option<MirasAgent>,
    model_free: Option<Ddpg>,
}

impl PolicyConfig {
    /// Configuration for `ensemble` with its default consumer budget and
    /// the paper's 30 s decision window.
    #[must_use]
    pub fn new(ensemble: &Ensemble) -> Self {
        PolicyConfig {
            consumer_budget: ensemble.default_consumer_budget(),
            ensemble: ensemble.clone(),
            window_secs: 30.0,
            miras_agent: None,
            model_free: None,
        }
    }

    /// Overrides the total-consumer constraint `C`.
    #[must_use]
    pub fn with_consumer_budget(mut self, budget: usize) -> Self {
        self.consumer_budget = budget;
        self
    }

    /// Overrides the decision-window length the model-predictive baselines
    /// (`stream`, `monad`) plan over.
    #[must_use]
    pub fn with_window_secs(mut self, secs: f64) -> Self {
        self.window_secs = secs;
        self
    }

    /// Attaches a trained MIRAS agent, enabling the `miras` policy.
    #[must_use]
    pub fn with_miras_agent(mut self, agent: MirasAgent) -> Self {
        self.miras_agent = Some(agent);
        self
    }

    /// Attaches a trained model-free DDPG agent, enabling the `rl` policy.
    #[must_use]
    pub fn with_model_free(mut self, agent: Ddpg) -> Self {
        self.model_free = Some(agent);
        self
    }

    /// The configured consumer budget.
    #[must_use]
    pub fn consumer_budget(&self) -> usize {
        self.consumer_budget
    }

    /// The configured ensemble.
    #[must_use]
    pub fn ensemble(&self) -> &Ensemble {
        &self.ensemble
    }
}

/// Why the registry could not build a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The name is not in the registry; see [`known_policies`].
    Unknown {
        /// The name that failed to resolve.
        name: String,
    },
    /// The policy needs a trained artifact the [`PolicyConfig`] lacks.
    MissingArtifact {
        /// The policy that was requested.
        policy: &'static str,
        /// What has to be attached to the config (and how).
        artifact: &'static str,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Unknown { name } => {
                write!(
                    f,
                    "unknown policy '{name}' (known: {})",
                    known_policies().join(", ")
                )
            }
            PolicyError::MissingArtifact { policy, artifact } => {
                write!(f, "policy '{policy}' needs {artifact}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// The registry's policy names, in the order the benchmarks report them.
/// `drs` and `wip` are accepted as aliases for `stream` and
/// `wip-proportional`.
#[must_use]
pub fn known_policies() -> &'static [&'static str] {
    &[
        "miras",
        "uniform",
        "wip-proportional",
        "stream",
        "heft",
        "monad",
        "rl",
    ]
}

/// The registry name of the degraded-mode fallback policy the serving loop
/// uses when the primary policy misses its decision deadline: cheap
/// (O(J) integer arithmetic, no model evaluation), deterministic, and
/// artifact-free, so it can always be constructed and always answers
/// within the budget.
pub const FALLBACK_POLICY: &str = "wip-proportional";

/// Builds the serving loop's degraded-mode fallback policy
/// ([`FALLBACK_POLICY`]) for `config`.
///
/// Unlike [`by_name`] this cannot fail: the fallback is deliberately one of
/// the artifact-free registry policies, so a serving process that can start
/// at all can always degrade instead of stalling.
#[must_use]
pub fn fallback(config: &PolicyConfig) -> Box<dyn Policy> {
    by_name(FALLBACK_POLICY, config).expect("the fallback policy is artifact-free")
}

/// Builds a policy by registry name.
///
/// Static policies (`uniform`, `wip-proportional`/`wip`, `stream`/`drs`,
/// `heft`, `monad`) need only the ensemble already in the config; the
/// learned policies (`miras`, `rl`) additionally need their trained agents
/// attached via [`PolicyConfig::with_miras_agent`] /
/// [`PolicyConfig::with_model_free`].
///
/// # Errors
///
/// [`PolicyError::Unknown`] for names outside [`known_policies`],
/// [`PolicyError::MissingArtifact`] when a learned policy's agent is
/// absent.
pub fn by_name(name: &str, config: &PolicyConfig) -> Result<Box<dyn Policy>, PolicyError> {
    let j = config.ensemble.num_task_types();
    let budget = config.consumer_budget;
    Ok(match name {
        "miras" => {
            let agent = config
                .miras_agent
                .clone()
                .ok_or(PolicyError::MissingArtifact {
                    policy: "miras",
                    artifact: "a trained MirasAgent (PolicyConfig::with_miras_agent)",
                })?;
            Box::new(AllocatorPolicy::new(agent))
        }
        "uniform" => Box::new(AllocatorPolicy::new(UniformAllocator::new(j, budget))),
        "wip" | "wip-proportional" => Box::new(AllocatorPolicy::new(
            WipProportionalAllocator::new(j, budget),
        )),
        "stream" | "drs" => Box::new(AllocatorPolicy::new(DrsAllocator::new(
            &config.ensemble,
            budget,
            config.window_secs,
        ))),
        "heft" => Box::new(AllocatorPolicy::new(HeftAllocator::new(
            &config.ensemble,
            budget,
        ))),
        "monad" => Box::new(AllocatorPolicy::new(MonadAllocator::new(
            j,
            budget,
            config.window_secs,
        ))),
        "rl" => {
            let agent = config
                .model_free
                .clone()
                .ok_or(PolicyError::MissingArtifact {
                    policy: "rl",
                    artifact: "a trained model-free Ddpg (PolicyConfig::with_model_free)",
                })?;
            Box::new(AllocatorPolicy::new(ModelFreeDdpg::new(agent, budget)))
        }
        other => {
            return Err(PolicyError::Unknown {
                name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PolicyConfig {
        PolicyConfig::new(&Ensemble::msd())
    }

    #[test]
    fn static_policies_build_and_respect_budget() {
        for name in [
            "uniform",
            "wip",
            "wip-proportional",
            "stream",
            "drs",
            "heft",
            "monad",
        ] {
            let mut p = by_name(name, &cfg()).unwrap();
            let d = p.decide(&Observation::first(&[5.0, 1.0, 0.0, 9.0]));
            assert!(
                d.allocations.iter().sum::<usize>() <= 14,
                "{name}: {:?}",
                d.allocations
            );
            assert_eq!(d.policy_version, 0, "{name}");
            assert_eq!(p.consumer_budget(), 14, "{name}");
        }
    }

    #[test]
    fn aliases_resolve_to_the_same_algorithm() {
        assert_eq!(by_name("drs", &cfg()).unwrap().name(), "stream");
        assert_eq!(
            by_name("wip", &cfg()).unwrap().name(),
            by_name("wip-proportional", &cfg()).unwrap().name()
        );
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = by_name("bogus", &cfg()).err().unwrap();
        assert!(matches!(err, PolicyError::Unknown { .. }));
        assert!(err.to_string().contains("bogus"));
        assert!(err.to_string().contains("miras"));
    }

    #[test]
    fn learned_policies_require_artifacts() {
        let err = by_name("miras", &cfg()).err().unwrap();
        assert!(matches!(
            err,
            PolicyError::MissingArtifact {
                policy: "miras",
                ..
            }
        ));
        let err = by_name("rl", &cfg()).err().unwrap();
        assert!(matches!(
            err,
            PolicyError::MissingArtifact { policy: "rl", .. }
        ));
    }

    #[test]
    fn miras_builds_once_agent_is_attached() {
        use nn::{Activation, Mlp};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0);
        let actor = Mlp::new(&[4, 8, 4], Activation::Relu, Activation::Softmax, &mut rng);
        let agent = MirasAgent::new(actor, 14);
        let config = cfg().with_miras_agent(agent.clone());
        let mut p = <dyn Policy>::by_name("miras", &config).unwrap();
        assert_eq!(p.name(), "miras");
        let d = p.decide(&Observation::first(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(d.allocations, agent.allocate(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn versioned_wrapper_stamps_decisions() {
        let mut p = AllocatorPolicy::new(UniformAllocator::new(4, 14)).with_version(7);
        assert_eq!(p.policy_version(), 7);
        let d = p.decide(&Observation::first(&[0.0; 4]));
        assert_eq!(d.policy_version, 7);
    }

    #[test]
    fn fallback_is_cheap_deterministic_and_budget_respecting() {
        let mut fb = fallback(&cfg().with_consumer_budget(10));
        assert_eq!(fb.name(), FALLBACK_POLICY);
        assert_eq!(fb.consumer_budget(), 10);
        let wip = [8.0, 0.0, 1.0, 1.0];
        let a = fb.decide(&Observation::first(&wip));
        let b = fb.decide(&Observation::first(&wip));
        assert_eq!(a.allocations, b.allocations, "fallback is deterministic");
        assert!(a.allocations.iter().sum::<usize>() <= 10);
    }

    #[test]
    fn registry_order_matches_reports() {
        assert_eq!(
            known_policies(),
            &[
                "miras",
                "uniform",
                "wip-proportional",
                "stream",
                "heft",
                "monad",
                "rl"
            ]
        );
    }
}
