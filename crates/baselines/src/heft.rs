//! HEFT-style priority allocation — `heft` in the paper's figures.

use rl::policy::allocation_largest_remainder;
use workflow::Ensemble;

use crate::{Allocator, Observation};

/// The HEFT adaptation described in §VI-D of the paper.
///
/// HEFT (heterogeneous earliest finish time; Yu, Buyya & Ramamohanarao) is a
/// task-machine scheduling algorithm: tasks get priorities by *upward rank*
/// — mean computation time plus the maximum rank of any successor — and
/// machines are assigned in priority order. The MIRAS paper adapts it to
/// window-based allocation: "At the beginning of each time window we make
/// resource allocation decisions based on both task number and task
/// priority." Concretely, each task type's weight is
/// `rank_u(j) · (w_j + 1)`, and the budget is divided proportionally.
///
/// # Examples
///
/// ```
/// use baselines::{Allocator, HeftAllocator, Observation};
/// use workflow::Ensemble;
///
/// let mut heft = HeftAllocator::new(&Ensemble::msd(), 14);
/// let m = heft.allocate(&Observation::first(&[10.0, 0.0, 0.0, 0.0]));
/// assert!(m.iter().sum::<usize>() <= 14);
/// // The backlogged queue receives the most consumers.
/// assert_eq!(m.iter().max(), Some(&m[0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeftAllocator {
    /// Upward rank per task type, aggregated (maximum) over all workflows.
    ranks: Vec<f64>,
    budget: usize,
}

impl HeftAllocator {
    /// Creates a HEFT allocator for `ensemble` with total budget `budget`.
    #[must_use]
    pub fn new(ensemble: &Ensemble, budget: usize) -> Self {
        let j = ensemble.num_task_types();
        let mut ranks = vec![0.0f64; j];
        for wf in ensemble.workflows() {
            let dag = &wf.dag;
            // Upward rank per node, computed in reverse topological order:
            // rank(n) = cost(type(n)) + max over successors rank(succ).
            let mut node_rank = vec![0.0f64; dag.num_nodes()];
            for &n in dag.topo_order().iter().rev() {
                let cost = ensemble.task_type(dag.task_type(n)).mean_service_secs;
                let succ_max = dag
                    .successors(n)
                    .iter()
                    .map(|&s| node_rank[s])
                    .fold(0.0, f64::max);
                node_rank[n] = cost + succ_max;
            }
            for (n, &r) in node_rank.iter().enumerate() {
                let t = dag.task_type(n).index();
                ranks[t] = ranks[t].max(r);
            }
        }
        HeftAllocator { ranks, budget }
    }

    /// The upward rank of each task type.
    #[must_use]
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

impl Allocator for HeftAllocator {
    fn name(&self) -> &str {
        "heft"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        let wip = obs.wip;
        assert_eq!(wip.len(), self.ranks.len(), "WIP dimension mismatch");
        // Weight = priority × (backlog + 1): queues with no work still keep
        // a small claim so the first tasks of high-rank workflows are not
        // starved when they arrive mid-window.
        let weights: Vec<f64> = self
            .ranks
            .iter()
            .zip(wip)
            .map(|(&r, &w)| r * (w.max(0.0) + 1.0))
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![0; self.ranks.len()];
        }
        let dist: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        allocation_largest_remainder(&dist, self.budget)
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upstream_tasks_have_higher_rank() {
        // In a chain A → B → C, rank(A) > rank(B) > rank(C).
        let heft = HeftAllocator::new(&Ensemble::msd(), 14);
        let ranks = heft.ranks();
        // Task A (0) starts both Type1 (A→B→C) and Type2 (A→C→D).
        // Its rank must exceed C's (2), which is near the end everywhere.
        assert!(ranks[0] > ranks[2], "{ranks:?}");
    }

    #[test]
    fn ligo_entry_stages_outrank_coire() {
        let heft = HeftAllocator::new(&Ensemble::ligo(), 30);
        let ranks = heft.ranks();
        // DataFind (0) heads two long chains; Coire (7) is terminal.
        assert!(ranks[0] > ranks[7], "{ranks:?}");
    }

    #[test]
    fn allocation_tracks_backlog_and_priority() {
        let mut heft = HeftAllocator::new(&Ensemble::msd(), 14);
        let balanced = heft.allocate(&Observation::first(&[5.0, 5.0, 5.0, 5.0]));
        let skewed = heft.allocate(&Observation::first(&[50.0, 5.0, 5.0, 5.0]));
        assert!(skewed[0] > balanced[0], "{balanced:?} vs {skewed:?}");
    }

    #[test]
    fn budget_respected_and_fully_used() {
        let mut heft = HeftAllocator::new(&Ensemble::ligo(), 30);
        let m = heft.allocate(&Observation::first(&[1.0; 9]));
        assert_eq!(m.iter().sum::<usize>(), 30);
    }

    #[test]
    fn zero_wip_still_allocates_by_priority() {
        let mut heft = HeftAllocator::new(&Ensemble::msd(), 14);
        let m = heft.allocate(&Observation::first(&[0.0; 4]));
        assert_eq!(m.iter().sum::<usize>(), 14);
        assert!(m[0] >= m[3], "{m:?}");
    }
}
