//! Static reference allocators.

use rl::policy::{allocation_largest_remainder, distribution_from_allocation};

use crate::{Allocator, Observation};

/// Splits the budget evenly across task types, ignoring the observed state.
///
/// # Examples
///
/// ```
/// use baselines::{Allocator, Observation, UniformAllocator};
///
/// let mut u = UniformAllocator::new(4, 14);
/// let m = u.allocate(&Observation::first(&[0.0; 4]));
/// assert_eq!(m.iter().sum::<usize>(), 14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformAllocator {
    num_task_types: usize,
    budget: usize,
}

impl UniformAllocator {
    /// Creates a uniform allocator over `num_task_types` task types.
    ///
    /// # Panics
    ///
    /// Panics if `num_task_types` is zero.
    #[must_use]
    pub fn new(num_task_types: usize, budget: usize) -> Self {
        assert!(num_task_types > 0, "need at least one task type");
        UniformAllocator {
            num_task_types,
            budget,
        }
    }
}

impl Allocator for UniformAllocator {
    fn name(&self) -> &str {
        "uniform"
    }

    fn allocate(&mut self, _obs: &Observation) -> Vec<usize> {
        let even = vec![1.0 / self.num_task_types as f64; self.num_task_types];
        allocation_largest_remainder(&even, self.budget)
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

/// Allocates consumers proportionally to each queue's share of total WIP —
/// the simplest adaptive heuristic and a useful floor for the learned
/// policies.
///
/// # Examples
///
/// ```
/// use baselines::{Allocator, Observation, WipProportionalAllocator};
///
/// let mut p = WipProportionalAllocator::new(2, 10);
/// let m = p.allocate(&Observation::first(&[30.0, 10.0]));
/// assert_eq!(m, vec![8, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WipProportionalAllocator {
    num_task_types: usize,
    budget: usize,
}

impl WipProportionalAllocator {
    /// Creates a WIP-proportional allocator.
    ///
    /// # Panics
    ///
    /// Panics if `num_task_types` is zero.
    #[must_use]
    pub fn new(num_task_types: usize, budget: usize) -> Self {
        assert!(num_task_types > 0, "need at least one task type");
        WipProportionalAllocator {
            num_task_types,
            budget,
        }
    }
}

impl Allocator for WipProportionalAllocator {
    fn name(&self) -> &str {
        "wip-proportional"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        let wip = obs.wip;
        assert_eq!(wip.len(), self.num_task_types, "WIP dimension mismatch");
        let counts: Vec<usize> = wip.iter().map(|&w| w.max(0.0).round() as usize).collect();
        let dist = distribution_from_allocation(&counts);
        allocation_largest_remainder(&dist, self.budget)
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_evenly_with_remainder() {
        let mut u = UniformAllocator::new(3, 14);
        let m = u.allocate(&Observation::first(&[1.0, 2.0, 3.0]));
        assert_eq!(m.iter().sum::<usize>(), 14);
        assert!(m.iter().all(|&x| x == 4 || x == 5));
    }

    #[test]
    fn proportional_follows_backlog() {
        let mut p = WipProportionalAllocator::new(3, 12);
        let m = p.allocate(&Observation::first(&[60.0, 30.0, 30.0]));
        assert_eq!(m, vec![6, 3, 3]);
    }

    #[test]
    fn proportional_handles_all_zero_wip() {
        let mut p = WipProportionalAllocator::new(4, 14);
        let m = p.allocate(&Observation::first(&[0.0; 4]));
        assert_eq!(m.iter().sum::<usize>(), 14);
    }

    #[test]
    fn budgets_are_respected() {
        let mut u = UniformAllocator::new(5, 7);
        let mut p = WipProportionalAllocator::new(5, 7);
        for wip in [[0.0; 5], [100.0, 0.0, 0.0, 0.0, 0.0]] {
            assert!(u.allocate(&Observation::first(&wip)).iter().sum::<usize>() <= 7);
            assert!(p.allocate(&Observation::first(&wip)).iter().sum::<usize>() <= 7);
        }
    }
}
