//! The common allocator interface.

use microsim::WindowMetrics;

/// Everything an allocator may observe when making one window's decision.
///
/// Bundling the observation into one struct keeps the [`Allocator`] trait
/// stable as new observables are added, and makes the window index available
/// to policies that warm up or schedule over time. Borrowed fields keep the
/// struct copy-free: it is built fresh each window from data the harness
/// already holds.
///
/// # Examples
///
/// ```
/// use baselines::Observation;
///
/// let wip = [3.0, 1.0];
/// let obs = Observation::first(&wip);
/// assert_eq!(obs.window_index, 0);
/// assert!(obs.previous.is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// The current per-task-type work-in-progress vector `w(k)`.
    pub wip: &'a [f64],
    /// Metrics of the *previous* window (arrival counts, applied action,
    /// completions), absent on the very first decision. Adaptive baselines
    /// use these to update their internal estimates.
    pub previous: Option<&'a WindowMetrics>,
    /// Index `k` of the decision window about to start (0-based).
    pub window_index: usize,
}

impl<'a> Observation<'a> {
    /// Builds an observation for window `window_index`.
    #[must_use]
    pub fn new(wip: &'a [f64], previous: Option<&'a WindowMetrics>, window_index: usize) -> Self {
        Observation {
            wip,
            previous,
            window_index,
        }
    }

    /// The observation for the very first decision window: no previous
    /// metrics, index zero.
    #[must_use]
    pub fn first(wip: &'a [f64]) -> Self {
        Observation::new(wip, None, 0)
    }
}

/// A resource-allocation policy: observation in, consumer counts out.
///
/// Implementations receive an [`Observation`] — the current per-task-type
/// WIP vector, the previous window's [`WindowMetrics`] (absent on the first
/// decision), and the window index. Allocations must respect the
/// implementation's consumer budget.
pub trait Allocator {
    /// Short name used in reports (matches the paper's figure legends:
    /// `miras`, `stream`, `heft`, `monad`, `rl`, …).
    fn name(&self) -> &str;

    /// Consumer counts for the next window given the observation.
    fn allocate(&mut self, obs: &Observation) -> Vec<usize>;

    /// The total-consumer constraint this allocator was configured with.
    fn consumer_budget(&self) -> usize;
}

/// [`miras_core::MirasAgent`] is itself an allocator, so the harness can run
/// MIRAS and the baselines through one code path. The agent's policy is a
/// pure function of the WIP state, so the rest of the observation is unused.
impl Allocator for miras_core::MirasAgent {
    fn name(&self) -> &str {
        "miras"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        miras_core::MirasAgent::allocate(self, obs.wip)
    }

    fn consumer_budget(&self) -> usize {
        miras_core::MirasAgent::consumer_budget(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Activation, Mlp};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn miras_agent_is_an_allocator() {
        let mut rng = SmallRng::seed_from_u64(0);
        let actor = Mlp::new(&[4, 8, 4], Activation::Relu, Activation::Softmax, &mut rng);
        let mut agent = miras_core::MirasAgent::new(actor, 14);
        let alloc: &mut dyn Allocator = &mut agent;
        assert_eq!(alloc.name(), "miras");
        assert_eq!(alloc.consumer_budget(), 14);
        let m = alloc.allocate(&Observation::first(&[1.0, 2.0, 3.0, 4.0]));
        assert!(m.iter().sum::<usize>() <= 14);
    }

    #[test]
    fn observation_constructors_populate_fields() {
        let wip = [1.0, 2.0];
        let metrics = WindowMetrics {
            window_index: 6,
            wip: vec![1, 2],
            reward: 0.0,
            action_applied: vec![1, 1],
            constraint_violated: false,
            arrivals: vec![0],
            completions: vec![0],
            mean_response_secs: vec![None],
        };
        let obs = Observation::new(&wip, Some(&metrics), 7);
        assert_eq!(obs.wip, &wip);
        assert_eq!(obs.previous.unwrap().window_index, 6);
        assert_eq!(obs.window_index, 7);
    }
}
