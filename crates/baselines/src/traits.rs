//! The common allocator interface.

use microsim::WindowMetrics;

/// A resource-allocation policy: WIP observation in, consumer counts out.
///
/// Implementations receive the current per-task-type WIP vector and,
/// after the first window, the [`WindowMetrics`] of the *previous* window
/// (arrival counts, applied action, completions), which adaptive baselines
/// use to update their internal estimates. Allocations must respect the
/// implementation's consumer budget.
pub trait Allocator {
    /// Short name used in reports (matches the paper's figure legends:
    /// `miras`, `stream`, `heft`, `monad`, `rl`, …).
    fn name(&self) -> &str;

    /// Consumer counts for the next window given the observed WIP and the
    /// previous window's metrics (absent on the very first decision).
    fn allocate(&mut self, wip: &[f64], previous: Option<&WindowMetrics>) -> Vec<usize>;

    /// The total-consumer constraint this allocator was configured with.
    fn consumer_budget(&self) -> usize;
}

/// [`miras_core::MirasAgent`] is itself an allocator, so the harness can run
/// MIRAS and the baselines through one code path.
impl Allocator for miras_core::MirasAgent {
    fn name(&self) -> &str {
        "miras"
    }

    fn allocate(&mut self, wip: &[f64], _previous: Option<&WindowMetrics>) -> Vec<usize> {
        miras_core::MirasAgent::allocate(self, wip)
    }

    fn consumer_budget(&self) -> usize {
        miras_core::MirasAgent::consumer_budget(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Activation, Mlp};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn miras_agent_is_an_allocator() {
        let mut rng = SmallRng::seed_from_u64(0);
        let actor = Mlp::new(&[4, 8, 4], Activation::Relu, Activation::Softmax, &mut rng);
        let mut agent = miras_core::MirasAgent::new(actor, 14);
        let alloc: &mut dyn Allocator = &mut agent;
        assert_eq!(alloc.name(), "miras");
        assert_eq!(alloc.consumer_budget(), 14);
        let m = alloc.allocate(&[1.0, 2.0, 3.0, 4.0], None);
        assert!(m.iter().sum::<usize>() <= 14);
    }
}
