//! Baseline resource-allocation algorithms the MIRAS paper compares against
//! (§VI-D).
//!
//! All baselines implement the common [`Allocator`] trait — an
//! [`Observation`] (WIP vector, previous window's metrics, window index) in,
//! consumer allocation out — so the evaluation harness can run them
//! interchangeably with MIRAS:
//!
//! * [`DrsAllocator`] — *stream* in the paper's figures: DRS (Fu et al.,
//!   ICDCS 2015), a Jackson open-queueing-network allocator that picks the
//!   consumer counts minimising total expected sojourn time via Erlang-C,
//! * [`HeftAllocator`] — *heft*: upward-rank task priorities (Yu & Buyya)
//!   adapted to window-based consumer allocation, weighting queues by both
//!   backlog and rank as §VI-D describes,
//! * [`MonadAllocator`] — *MONAD* (Nguyen & Nahrstedt, ICAC 2017):
//!   model-predictive control with an online-identified linear performance
//!   model and a one-step (short-horizon) lookahead,
//! * [`ModelFreeDdpg`] — *rl*: DDPG trained directly against the real
//!   environment with the same interaction budget as MIRAS (the paper's
//!   sample-efficiency comparison),
//! * [`UniformAllocator`] / [`WipProportionalAllocator`] — static
//!   references.
//!
//! # Examples
//!
//! ```
//! use baselines::{Allocator, Observation, UniformAllocator};
//!
//! let mut alloc = UniformAllocator::new(4, 14);
//! let m = alloc.allocate(&Observation::first(&[10.0, 0.0, 5.0, 2.0]));
//! assert_eq!(m.iter().sum::<usize>(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drs;
mod heft;
mod model_free;
mod monad;
mod policy;
pub mod queueing;
mod statics;
mod traits;

pub use drs::DrsAllocator;
pub use heft::HeftAllocator;
pub use model_free::{train_model_free, ModelFreeDdpg};
pub use monad::MonadAllocator;
pub use policy::{
    by_name, fallback, known_policies, AllocatorPolicy, Decision, Policy, PolicyConfig,
    PolicyError, FALLBACK_POLICY,
};
pub use statics::{UniformAllocator, WipProportionalAllocator};
pub use traits::{Allocator, Observation};
