//! Model-free DDPG — `rl` in the paper's figures.
//!
//! The paper's sample-efficiency comparison (§VI-D): train vanilla DDPG
//! *directly* against the real environment, with the same number of real
//! interactions MIRAS received. Without the learnt environment model to
//! multiply experience, the budget is far too small and the policy fails to
//! converge — which is exactly the phenomenon the benchmark reproduces.

use miras_core::ClusterEnvAdapter;
use rl::policy::allocation_largest_remainder;
use rl::{Ddpg, DdpgConfig, Environment};

use crate::{Allocator, Observation};

/// A policy produced by model-free DDPG training, usable as an
/// [`Allocator`].
#[derive(Debug)]
pub struct ModelFreeDdpg {
    agent: Ddpg,
    budget: usize,
}

impl ModelFreeDdpg {
    /// Wraps a trained agent.
    #[must_use]
    pub fn new(agent: Ddpg, budget: usize) -> Self {
        ModelFreeDdpg { agent, budget }
    }

    /// Read access to the wrapped agent.
    #[must_use]
    pub fn agent(&self) -> &Ddpg {
        &self.agent
    }
}

impl Allocator for ModelFreeDdpg {
    fn name(&self) -> &str {
        "rl"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        allocation_largest_remainder(&self.agent.act(obs.wip), self.budget)
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

/// Trains DDPG directly on the real environment for `real_steps`
/// interactions (resetting every `reset_every` steps, like MIRAS's
/// collection phase) and returns the resulting allocator.
///
/// "To guarantee fairness, we train DDPG models using the same number of
/// interactions with MIRAS" (§VI-D). Every interaction feeds the replay
/// buffer and triggers one gradient step — the standard online DDPG loop.
/// When `episode_burst_max` is set, each episode opens with a random burst
/// of up to that many requests per workflow type, mirroring MIRAS's
/// collection conditions so neither learner sees a regime the other didn't.
///
/// # Examples
///
/// ```
/// use baselines::{train_model_free, Allocator, Observation};
/// use microsim::{EnvConfig, MicroserviceEnv};
/// use miras_core::ClusterEnvAdapter;
/// use rl::DdpgConfig;
/// use workflow::Ensemble;
///
/// let ensemble = Ensemble::msd();
/// let config = EnvConfig::for_ensemble(&ensemble).with_seed(0);
/// let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
/// let mut policy = train_model_free(&mut env, 40, 20, DdpgConfig::small_test(1), None);
/// let m = policy.allocate(&Observation::first(&[5.0; 4]));
/// assert!(m.iter().sum::<usize>() <= 14);
/// ```
pub fn train_model_free(
    env: &mut ClusterEnvAdapter,
    real_steps: usize,
    reset_every: usize,
    config: DdpgConfig,
    episode_burst_max: Option<&[usize]>,
) -> ModelFreeDdpg {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let j = env.state_dim();
    let budget = env.consumer_budget();
    let mut burst_rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0xB0B));
    let mut agent = Ddpg::new(j, j, config);
    let inject = |env: &mut ClusterEnvAdapter, rng: &mut SmallRng| {
        if let Some(max) = episode_burst_max {
            let n = env.env().num_workflow_types();
            let sizes: Vec<usize> = (0..n)
                .map(|i| match max.get(i) {
                    Some(&m) if m > 0 => rng.gen_range(0..=m),
                    _ => 0,
                })
                .collect();
            env.env_mut().inject_burst(&workflow::BurstSpec::new(sizes));
        }
    };
    let mut s = env.reset();
    inject(env, &mut burst_rng);
    for step in 0..real_steps {
        if step > 0 && reset_every > 0 && step % reset_every == 0 {
            s = env.reset();
            inject(env, &mut burst_rng);
            agent.resample_perturbation();
        }
        let a = agent.act_exploratory(&s);
        let t = env.step(&a);
        agent.observe(&s, &a, t.reward, &t.next_state);
        let _ = agent.train_step();
        s = t.next_state;
    }
    // The transitions are real interactions; discard them from the adapter's
    // model-data log so a subsequent MIRAS run is not contaminated.
    let _ = env.take_transitions();
    ModelFreeDdpg::new(agent, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{EnvConfig, MicroserviceEnv};
    use workflow::Ensemble;

    fn env(seed: u64) -> ClusterEnvAdapter {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
        ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
    }

    #[test]
    fn training_consumes_exactly_the_step_budget() {
        let mut e = env(0);
        let before = e.env().window_index();
        let _ = train_model_free(&mut e, 30, 10, DdpgConfig::small_test(1), None);
        // Each training step is one real window.
        assert_eq!(e.env().window_index() - before, 30);
    }

    #[test]
    fn trained_policy_respects_budget() {
        let mut e = env(2);
        let mut policy = train_model_free(
            &mut e,
            25,
            10,
            DdpgConfig::small_test(3),
            Some(&[20, 20, 20]),
        );
        for wip in [[0.0; 4], [100.0, 3.0, 0.0, 44.0]] {
            let m = policy.allocate(&Observation::first(&wip));
            assert!(m.iter().sum::<usize>() <= 14);
        }
        assert_eq!(policy.name(), "rl");
    }

    #[test]
    fn adapter_log_is_cleared_after_training() {
        let mut e = env(4);
        let _ = train_model_free(&mut e, 10, 5, DdpgConfig::small_test(5), None);
        assert!(e.take_transitions().is_empty());
    }
}
