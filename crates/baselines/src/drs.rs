//! DRS: Jackson open-queueing-network resource scheduling (Fu et al.,
//! ICDCS 2015) — `stream` in the paper's comparison figures.

use workflow::Ensemble;

use crate::{Allocator, Observation};

/// The DRS allocator.
///
/// DRS models each microservice as an M/M/m queue in a Jackson open network.
/// Given per-queue arrival-rate estimates `λ_j` and service rates `μ_j`, it
/// chooses the consumer vector minimising the network's total expected
/// sojourn time `Σ_j λ_j · T_j(m_j)` under `Σ_j m_j ≤ C`, where `T_j` is the
/// Erlang-C expected response time of an M/m/m queue. The minimisation is
/// the standard greedy marginal-benefit allocation (optimal because
/// `λ·T(m)` is convex in `m`).
///
/// Arrival rates are derived from the workflow ensemble's routing (every
/// type-`i` workflow visits task `j` a fixed number of times) applied to an
/// exponentially averaged estimate of per-workflow arrival rates — DRS
/// assumes steady-state flows, which is exactly why the paper finds it "does
/// not react responsively to condition changes".
///
/// # Examples
///
/// ```
/// use baselines::{Allocator, DrsAllocator, Observation};
/// use workflow::Ensemble;
///
/// let mut drs = DrsAllocator::new(&Ensemble::msd(), 14, 30.0);
/// let m = drs.allocate(&Observation::first(&[5.0, 5.0, 5.0, 5.0]));
/// assert!(m.iter().sum::<usize>() <= 14);
/// ```
#[derive(Debug, Clone)]
pub struct DrsAllocator {
    /// Service rate per consumer of each task type (requests/s).
    mu: Vec<f64>,
    /// Visits of each task type per workflow-type request.
    visits: Vec<Vec<f64>>, // [workflow][task]
    /// EWMA of per-workflow arrival rates (requests/s).
    lambda_wf: Vec<f64>,
    /// EWMA smoothing factor for arrival estimates.
    smoothing: f64,
    window_secs: f64,
    budget: usize,
}

impl DrsAllocator {
    /// Creates a DRS allocator for `ensemble` with total budget `budget` and
    /// decision windows of `window_secs` seconds.
    ///
    /// Arrival estimates start from the ensemble's default rates.
    #[must_use]
    pub fn new(ensemble: &Ensemble, budget: usize, window_secs: f64) -> Self {
        let j = ensemble.num_task_types();
        let mu = ensemble
            .task_types()
            .iter()
            .map(|t| 1.0 / t.mean_service_secs)
            .collect();
        let visits = ensemble
            .workflows()
            .iter()
            .map(|w| {
                let mut v = vec![0.0; j];
                for &tt in w.dag.task_types() {
                    v[tt.index()] += 1.0;
                }
                v
            })
            .collect();
        DrsAllocator {
            mu,
            visits,
            lambda_wf: ensemble.default_arrival_rates().to_vec(),
            smoothing: 0.3,
            window_secs,
            budget,
        }
    }

    /// Current per-task arrival-rate estimates `λ_j` (requests/s).
    #[must_use]
    pub fn task_arrival_rates(&self) -> Vec<f64> {
        let j = self.mu.len();
        let mut lambda = vec![0.0; j];
        for (wf, rate) in self.lambda_wf.iter().enumerate() {
            for (t, v) in self.visits[wf].iter().enumerate() {
                lambda[t] += rate * v;
            }
        }
        lambda
    }

    /// Expected M/M/m response time (Erlang-C): `W_q + 1/μ`, or infinity
    /// when the queue is unstable (`λ ≥ m·μ`). Delegates to
    /// [`crate::queueing`], which the differential validation harness also
    /// checks the simulator against.
    fn expected_response(lambda: f64, mu: f64, m: usize) -> f64 {
        if lambda <= 0.0 {
            return 1.0 / mu;
        }
        crate::queueing::mmc_mean_response(lambda, mu, m)
    }

    /// Total weighted sojourn-time objective for an allocation.
    fn objective(&self, lambda: &[f64], alloc: &[usize]) -> f64 {
        lambda
            .iter()
            .zip(&self.mu)
            .zip(alloc)
            .map(|((&l, &mu), &m)| {
                if l <= 0.0 {
                    0.0
                } else {
                    l * Self::expected_response(l, mu, m)
                }
            })
            .sum()
    }
}

impl Allocator for DrsAllocator {
    fn name(&self) -> &str {
        "stream"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        let j = self.mu.len();
        assert_eq!(obs.wip.len(), j, "WIP dimension mismatch");

        // Update workflow arrival estimates from the last window.
        if let Some(metrics) = obs.previous {
            for (est, &count) in self.lambda_wf.iter_mut().zip(&metrics.arrivals) {
                let observed = count as f64 / self.window_secs;
                *est = (1.0 - self.smoothing) * *est + self.smoothing * observed;
            }
        }

        let lambda = self.task_arrival_rates();
        // Greedy marginal-benefit allocation: hand out consumers one at a
        // time to the queue whose objective improves the most.
        let mut alloc = vec![0usize; j];
        for _ in 0..self.budget {
            let current = self.objective(&lambda, &alloc);
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_j = 0;
            for idx in 0..j {
                alloc[idx] += 1;
                let with = self.objective(&lambda, &alloc);
                alloc[idx] -= 1;
                let gain = if current.is_infinite() && with.is_infinite() {
                    // Both unstable: prefer stabilising the largest offered
                    // load first.
                    lambda[idx] / self.mu[idx] - alloc[idx] as f64
                } else {
                    current - with
                };
                if gain > best_gain {
                    best_gain = gain;
                    best_j = idx;
                }
            }
            alloc[best_j] += 1;
        }
        alloc
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::WindowMetrics;

    #[test]
    fn erlang_c_reduces_to_mm1() {
        // For m = 1, E[T] = 1 / (μ − λ).
        let t = DrsAllocator::expected_response(0.5, 1.0, 1);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_unstable_is_infinite() {
        assert!(DrsAllocator::expected_response(2.0, 1.0, 1).is_infinite());
        assert!(DrsAllocator::expected_response(2.0, 1.0, 2).is_infinite());
        assert!(DrsAllocator::expected_response(2.0, 1.0, 3).is_finite());
    }

    #[test]
    fn more_servers_never_hurt() {
        let mut last = f64::INFINITY;
        for m in 1..10 {
            let t = DrsAllocator::expected_response(1.5, 1.0, m);
            assert!(t <= last + 1e-12, "m={m}");
            last = t;
        }
    }

    #[test]
    fn allocation_uses_full_budget_and_stabilises_queues() {
        let ensemble = Ensemble::msd();
        let mut drs = DrsAllocator::new(&ensemble, 14, 30.0);
        let alloc = drs.allocate(&Observation::first(&[0.0; 4]));
        assert_eq!(alloc.iter().sum::<usize>(), 14);
        // Every queue with demand must be stable under the default rates.
        let lambda = drs.task_arrival_rates();
        for ((&l, &m), tt) in lambda.iter().zip(&alloc).zip(ensemble.task_types()) {
            let mu = 1.0 / tt.mean_service_secs;
            assert!(
                (m as f64) * mu > l,
                "unstable queue {}: m={m}, λ={l}, μ={mu}",
                tt.name
            );
        }
    }

    #[test]
    fn heavier_queues_get_more_consumers() {
        let ensemble = Ensemble::msd();
        let mut drs = DrsAllocator::new(&ensemble, 14, 30.0);
        let alloc = drs.allocate(&Observation::first(&[0.0; 4]));
        // Task C (index 2) is visited by all three workflows with the
        // largest mean service time, so it should receive the most.
        let max = alloc.iter().copied().max().unwrap();
        assert_eq!(alloc[2], max, "{alloc:?}");
    }

    #[test]
    fn arrival_estimates_track_observations() {
        let ensemble = Ensemble::msd();
        let mut drs = DrsAllocator::new(&ensemble, 14, 30.0);
        let before = drs.task_arrival_rates();
        let metrics = WindowMetrics {
            window_index: 0,
            wip: vec![0; 4],
            reward: 1.0,
            action_applied: vec![0; 4],
            constraint_violated: false,
            arrivals: vec![90, 0, 0], // a burst of Type1
            completions: vec![0; 3],
            mean_response_secs: vec![None; 3],
        };
        let _ = drs.allocate(&Observation::new(&[0.0; 4], Some(&metrics), 1));
        let after = drs.task_arrival_rates();
        // Type1 = A → B → C: those queues' estimates grow.
        assert!(after[0] > before[0]);
        assert!(after[1] > before[1]);
        assert!(after[2] > before[2]);
    }

    #[test]
    fn ligo_allocation_within_budget() {
        let ensemble = Ensemble::ligo();
        let mut drs = DrsAllocator::new(&ensemble, 30, 30.0);
        let alloc = drs.allocate(&Observation::first(&[1.0; 9]));
        assert_eq!(alloc.iter().sum::<usize>(), 30);
        // Inspiral (index 2) is the heavy stage shared by all workflows.
        let max = alloc.iter().copied().max().unwrap();
        assert_eq!(alloc[2], max, "{alloc:?}");
    }
}
