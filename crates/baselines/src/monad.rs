//! MONAD: model-predictive-control resource allocation (Nguyen & Nahrstedt,
//! ICAC 2017) — `monad` in the paper's figures.

use microsim::WindowMetrics;

use crate::{Allocator, Observation};

/// The MONAD allocator: one-step model-predictive control over an
/// online-identified linear performance model.
///
/// MONAD identifies, per microservice, a linear model of how WIP evolves:
/// `ŵ_j(k+1) = w_j(k) + â_j − d̂_j · m_j(k)`, where `â_j` is the estimated
/// per-window task inflow and `d̂_j` the per-consumer drain rate. Both are
/// tracked with exponential moving averages from observed transitions. Each
/// window it picks the allocation minimising the *predicted next-window*
/// cost `Σ_j max(0, ŵ_j(k+1))²` by greedy marginal assignment (optimal for
/// this separable convex objective).
///
/// The quadratic cost makes MONAD chase the currently largest queues — the
/// short-horizon behaviour the paper criticises: "MONAD focuses on
/// short-term returns and is not suitable to yield a global optimal
/// solution" (§VI-D).
///
/// # Examples
///
/// ```
/// use baselines::{Allocator, MonadAllocator, Observation};
///
/// let mut monad = MonadAllocator::new(4, 14, 30.0);
/// let m = monad.allocate(&Observation::first(&[40.0, 5.0, 5.0, 0.0]));
/// assert!(m.iter().sum::<usize>() <= 14);
/// // The big queue dominates the one-step objective.
/// assert!(m[0] >= m[3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonadAllocator {
    /// Estimated per-window task inflow per queue.
    inflow: Vec<f64>,
    /// Estimated per-consumer, per-window drain per queue.
    drain: Vec<f64>,
    smoothing: f64,
    budget: usize,
}

impl MonadAllocator {
    /// Creates a MONAD allocator for `num_task_types` queues with total
    /// budget `budget` and `window_secs`-second windows.
    ///
    /// The drain estimate starts from the optimistic prior of one task per
    /// consumer per 4 seconds and is corrected online.
    ///
    /// # Panics
    ///
    /// Panics if `num_task_types` is zero.
    #[must_use]
    pub fn new(num_task_types: usize, budget: usize, window_secs: f64) -> Self {
        assert!(num_task_types > 0, "need at least one task type");
        MonadAllocator {
            inflow: vec![0.0; num_task_types],
            drain: vec![window_secs / 4.0; num_task_types],
            smoothing: 0.3,
            budget,
        }
    }

    /// The current per-queue inflow estimates (tasks per window).
    #[must_use]
    pub fn inflow_estimates(&self) -> &[f64] {
        &self.inflow
    }

    /// The current per-consumer drain estimates (tasks per window).
    #[must_use]
    pub fn drain_estimates(&self) -> &[f64] {
        &self.drain
    }

    /// Predicted next-window cost of one queue under `m` consumers.
    fn queue_cost(&self, j: usize, wip: f64, m: usize) -> f64 {
        let predicted = (wip + self.inflow[j] - self.drain[j] * m as f64).max(0.0);
        predicted * predicted
    }

    /// Updates the linear model from an observed transition
    /// `w(k) → w(k+1)` under the previously applied allocation.
    fn identify(&mut self, previous: &WindowMetrics, wip_now: &[f64]) {
        for (j, &w_after) in wip_now.iter().enumerate() {
            let w_before = previous.wip.get(j).copied().unwrap_or(0) as f64;
            let m = previous.action_applied.get(j).copied().unwrap_or(0) as f64;
            // Observed net change decomposes as inflow − drain·m. With one
            // equation and two unknowns per step, attribute the change to
            // drain when consumers were present and the queue was backlogged,
            // otherwise to inflow.
            if m > 0.0 && w_before > 0.0 {
                let drained = (w_before + self.inflow[j] - w_after).max(0.0);
                let observed_drain = (drained / m).max(0.0);
                self.drain[j] =
                    (1.0 - self.smoothing) * self.drain[j] + self.smoothing * observed_drain;
            } else {
                let observed_inflow = (w_after - w_before).max(0.0);
                self.inflow[j] =
                    (1.0 - self.smoothing) * self.inflow[j] + self.smoothing * observed_inflow;
            }
        }
    }
}

impl Allocator for MonadAllocator {
    fn name(&self) -> &str {
        "monad"
    }

    fn allocate(&mut self, obs: &Observation) -> Vec<usize> {
        let wip = obs.wip;
        let j = self.inflow.len();
        assert_eq!(wip.len(), j, "WIP dimension mismatch");
        if let Some(prev) = obs.previous {
            self.identify(prev, wip);
        }
        // Greedy marginal assignment on the separable convex cost.
        let mut alloc = vec![0usize; j];
        for _ in 0..self.budget {
            let mut best_gain = 0.0;
            let mut best_j = None;
            for idx in 0..j {
                let gain = self.queue_cost(idx, wip[idx], alloc[idx])
                    - self.queue_cost(idx, wip[idx], alloc[idx] + 1);
                if gain > best_gain {
                    best_gain = gain;
                    best_j = Some(idx);
                }
            }
            match best_j {
                // No queue benefits from another consumer: stop early —
                // MONAD does not allocate beyond predicted need.
                None => break,
                Some(idx) => alloc[idx] += 1,
            }
        }
        alloc
    }

    fn consumer_budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(wip: Vec<usize>, action: Vec<usize>) -> WindowMetrics {
        let n = wip.len();
        WindowMetrics {
            window_index: 0,
            wip,
            reward: 0.0,
            action_applied: action,
            constraint_violated: false,
            arrivals: vec![0; n],
            completions: vec![0; n],
            mean_response_secs: vec![None; n],
        }
    }

    #[test]
    fn biggest_queue_gets_priority() {
        let mut monad = MonadAllocator::new(3, 9, 30.0);
        let m = monad.allocate(&Observation::first(&[100.0, 10.0, 0.0]));
        assert!(m[0] > m[1], "{m:?}");
        assert!(m[1] >= m[2], "{m:?}");
    }

    #[test]
    fn stops_allocating_when_queues_are_empty() {
        let mut monad = MonadAllocator::new(3, 9, 30.0);
        let m = monad.allocate(&Observation::first(&[0.0, 0.0, 0.0]));
        // Zero predicted cost everywhere: no consumers needed.
        assert_eq!(m.iter().sum::<usize>(), 0);
    }

    #[test]
    fn drain_estimate_adapts_to_observations() {
        let mut monad = MonadAllocator::new(1, 4, 30.0);
        let initial_drain = monad.drain_estimates()[0];
        // Previous window: WIP 20 with 2 consumers; now WIP 16 → the pair
        // drained ~4, i.e. 2 per consumer — slower than the prior of 7.5.
        let prev = metrics(vec![20], vec![2]);
        let _ = monad.allocate(&Observation::new(&[16.0], Some(&prev), 1));
        assert!(monad.drain_estimates()[0] < initial_drain);
    }

    #[test]
    fn inflow_estimate_adapts_when_unserved() {
        let mut monad = MonadAllocator::new(1, 4, 30.0);
        // No consumers, queue grew from 0 to 12: inflow must rise.
        let prev = metrics(vec![0], vec![0]);
        let _ = monad.allocate(&Observation::new(&[12.0], Some(&prev), 1));
        assert!(monad.inflow_estimates()[0] > 0.0);
    }

    #[test]
    fn budget_never_exceeded() {
        let mut monad = MonadAllocator::new(4, 14, 30.0);
        let m = monad.allocate(&Observation::first(&[1000.0, 1000.0, 1000.0, 1000.0]));
        assert!(m.iter().sum::<usize>() <= 14);
    }

    #[test]
    fn marginal_assignment_equalises_large_queues() {
        let mut monad = MonadAllocator::new(2, 10, 30.0);
        let m = monad.allocate(&Observation::first(&[500.0, 500.0]));
        // Symmetric queues: split within one consumer of even.
        assert!((m[0] as i64 - m[1] as i64).abs() <= 1, "{m:?}");
    }
}
