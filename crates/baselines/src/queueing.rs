//! Analytic M/M/c (Erlang) queueing formulas.
//!
//! These are the steady-state predictions the DRS baseline optimises against
//! ([`crate::DrsAllocator`]) and the reference values the simulator's
//! differential validation harness (`sim_audit`, the `microsim` differential
//! tests) cross-checks the emulator against: a single-task workflow under
//! Poisson arrivals with `c` consumers is exactly an M/G/c queue, and with
//! the emulator's default log-normal service times at coefficient of
//! variation 1 the Allen–Cunneen approximation collapses to plain Erlang-C.
//!
//! All rates are in requests per second; all times in seconds.
//!
//! # Examples
//!
//! ```
//! use baselines::queueing;
//!
//! // λ = 2 req/s, μ = 1 req/s per server, c = 3 servers.
//! let w = queueing::mmc_mean_response(2.0, 1.0, 3);
//! assert!((w - 1.444).abs() < 1e-3);
//! let l = queueing::mmc_mean_in_system(2.0, 1.0, 3);
//! // Little's law: L = λ·W.
//! assert!((l - 2.0 * w).abs() < 1e-9);
//! ```

/// Server utilisation `ρ = λ / (c·μ)`, or infinity when `c = 0`.
#[must_use]
pub fn utilisation(lambda: f64, mu: f64, c: usize) -> f64 {
    if c == 0 {
        return f64::INFINITY;
    }
    lambda / (c as f64 * mu)
}

/// Erlang-B blocking probability `B(c, a)` for offered load `a = λ/μ`
/// Erlangs on `c` servers, via the numerically stable recursion
/// `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))`.
#[must_use]
pub fn erlang_b(offered_load: f64, c: usize) -> f64 {
    let a = offered_load;
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang-C probability that an arrival must queue,
/// `C = B / (1 − ρ·(1 − B))`. Returns 1.0 for an unstable queue (`ρ ≥ 1`).
#[must_use]
pub fn erlang_c(lambda: f64, mu: f64, c: usize) -> f64 {
    let rho = utilisation(lambda, mu, c);
    if rho >= 1.0 {
        return 1.0;
    }
    let b = erlang_b(lambda / mu, c);
    b / (1.0 - rho * (1.0 - b))
}

/// Mean time spent waiting in queue, `W_q = C / (c·μ − λ)`. Zero when
/// `λ ≤ 0`; infinite when the queue is unstable.
#[must_use]
pub fn mmc_mean_wait(lambda: f64, mu: f64, c: usize) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if utilisation(lambda, mu, c) >= 1.0 {
        return f64::INFINITY;
    }
    erlang_c(lambda, mu, c) / (c as f64 * mu - lambda)
}

/// Mean response (sojourn) time `W = W_q + 1/μ`.
#[must_use]
pub fn mmc_mean_response(lambda: f64, mu: f64, c: usize) -> f64 {
    mmc_mean_wait(lambda, mu, c) + 1.0 / mu
}

/// Mean queue length (excluding in-service requests), `L_q = λ·W_q`.
#[must_use]
pub fn mmc_mean_queue_len(lambda: f64, mu: f64, c: usize) -> f64 {
    lambda * mmc_mean_wait(lambda, mu, c)
}

/// Mean number of requests in the system (queued plus in service),
/// `L = L_q + a` where `a = λ/μ` is the offered load.
#[must_use]
pub fn mmc_mean_in_system(lambda: f64, mu: f64, c: usize) -> f64 {
    mmc_mean_queue_len(lambda, mu, c) + lambda / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // B(1, a) = a / (1 + a).
        assert!((erlang_b(0.5, 1) - 1.0 / 3.0).abs() < 1e-12);
        // B(0, a) = 1: no servers block everything.
        assert!((erlang_b(2.0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_mm1_is_rho() {
        // For c = 1 the probability of queueing is the utilisation.
        assert!((erlang_c(0.7, 1.0, 1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn worked_example_lambda2_mu1_c3() {
        // Textbook M/M/3 with λ = 2, μ = 1: ρ = 2/3, C ≈ 0.44444,
        // Wq ≈ 0.44444, W ≈ 1.44444, Lq ≈ 0.88889, L ≈ 2.88889.
        let (l, m, c) = (2.0, 1.0, 3);
        assert!((erlang_c(l, m, c) - 4.0 / 9.0).abs() < 1e-9);
        assert!((mmc_mean_wait(l, m, c) - 4.0 / 9.0).abs() < 1e-9);
        assert!((mmc_mean_response(l, m, c) - 13.0 / 9.0).abs() < 1e-9);
        assert!((mmc_mean_queue_len(l, m, c) - 8.0 / 9.0).abs() < 1e-9);
        assert!((mmc_mean_in_system(l, m, c) - 26.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn littles_law_holds() {
        for &(l, m, c) in &[(0.5, 1.0, 1), (2.0, 1.0, 3), (7.5, 2.0, 5)] {
            let lhs = mmc_mean_in_system(l, m, c);
            let rhs = l * mmc_mean_response(l, m, c);
            assert!((lhs - rhs).abs() < 1e-9, "λ={l} μ={m} c={c}");
        }
    }

    #[test]
    fn unstable_queue_diverges() {
        assert!(mmc_mean_wait(2.0, 1.0, 2).is_infinite());
        assert!(mmc_mean_response(3.0, 1.0, 0).is_infinite());
        assert!((erlang_c(2.0, 1.0, 2) - 1.0).abs() < 1e-12);
    }
}
