//! Buffered JSON Lines recorder.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{sanitize, Histogram, Recorder, Value, SCHEMA_VERSION};

/// How many buffered event lines trigger an early write-out.
const BUFFER_CAP: usize = 4096;

/// A [`Recorder`] that renders telemetry as JSON Lines.
///
/// Events are buffered as pre-formatted lines and written out when the
/// buffer fills or on [`Recorder::flush`]; counters, gauges and histograms
/// are aggregated in memory and emitted as summary rows at flush time (a
/// re-flush re-emits updated totals — consumers keep the last row per name).
///
/// Record shapes:
///
/// ```json
/// {"t":"event","seq":0,"name":"window","data":{...}}
/// {"t":"counter","name":"desim.events_processed","value":10290}
/// {"t":"gauge","name":"ddpg.sigma","value":0.18}
/// {"t":"hist","name":"nn.train_epoch","count":40,"sum":1.2,
///  "buckets":[{"le":0.001,"count":3},...,{"le":null,"count":40}]}
/// ```
///
/// `buckets` counts are cumulative (Prometheus `le` convention) and the
/// final `"le":null` entry is the `+Inf` bucket. Non-finite floats anywhere
/// are rendered as `null` (JSON has no `NaN`).
///
/// For file-backed sinks ([`JsonlSink::create`]) every flush also fsyncs
/// (`File::sync_all`), so records survive a crash of the process *or* the
/// machine once `flush` returns. In-run I/O errors are swallowed — telemetry
/// must never abort the run it observes — but the final flush in `Drop`
/// reports failures on stderr, and [`JsonlSink::try_flush`] exposes them to
/// callers that want to hard-fail.
pub struct JsonlSink {
    state: Mutex<SinkState>,
}

enum Output {
    /// A file plus buffering; flush fsyncs for crash durability.
    File(BufWriter<File>),
    Writer(Box<dyn Write + Send>),
    Buffer(Vec<u8>),
}

struct SinkState {
    out: Output,
    lines: Vec<String>,
    seq: u64,
    dirty: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl JsonlSink {
    fn with_output(out: Output) -> Arc<Self> {
        Arc::new(JsonlSink {
            state: Mutex::new(SinkState {
                out,
                lines: Vec::new(),
                seq: 0,
                dirty: false,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        })
    }

    /// Creates a sink writing to the file at `path` (truncating it),
    /// creating parent directories as needed. File-backed sinks fsync on
    /// every flush, so flushed records survive crashes.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Arc<Self>> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self::with_output(Output::File(BufWriter::new(file))))
    }

    /// Creates a sink over an arbitrary writer.
    #[must_use]
    pub fn to_writer<W: Write + Send + 'static>(writer: W) -> Arc<Self> {
        Self::with_output(Output::Writer(Box::new(writer)))
    }

    /// Creates a sink that accumulates its output in memory; retrieve it
    /// with [`JsonlSink::take_output`]. Intended for tests.
    #[must_use]
    pub fn in_memory() -> Arc<Self> {
        Self::with_output(Output::Buffer(Vec::new()))
    }

    /// Takes the bytes accumulated by an [`JsonlSink::in_memory`] sink
    /// (without flushing first — call [`Recorder::flush`] yourself).
    /// Returns an empty vector for writer-backed sinks.
    #[must_use]
    pub fn take_output(&self) -> Vec<u8> {
        match &mut self.lock().out {
            Output::Buffer(buf) => std::mem::take(buf),
            Output::File(_) | Output::Writer(_) => Vec::new(),
        }
    }

    /// Like [`Recorder::flush`] but reporting I/O failures instead of
    /// swallowing them. For file-backed sinks a successful return means the
    /// data has reached the disk (`File::sync_all`), not just the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first write, flush, or fsync error encountered.
    pub fn try_flush(&self) -> io::Result<()> {
        let mut state = self.lock();
        state.summary_rows();
        let write_res = state.write_lines();
        let sync_res = match &mut state.out {
            Output::File(w) => w.flush().and_then(|()| w.get_ref().sync_all()),
            Output::Writer(w) => w.flush(),
            Output::Buffer(_) => Ok(()),
        };
        state.dirty = false;
        write_res.and(sync_res)
    }

    /// Overrides the histogram bucket bounds for `name`. Must be called
    /// before the first observation of that histogram; later calls are
    /// ignored. Bounds must be finite and strictly increasing.
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        let mut state = self.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    fn lock(&self) -> MutexGuard<'_, SinkState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Prefixes a record's fields with the `schema_version` stamp every JSONL
/// record carries (see [`SCHEMA_VERSION`]).
fn stamped(fields: Vec<(String, Value)>) -> Value {
    let mut row = Vec::with_capacity(fields.len() + 1);
    row.push((
        "schema_version".to_string(),
        Value::UInt(u64::from(SCHEMA_VERSION)),
    ));
    row.extend(fields);
    Value::Object(row)
}

impl SinkState {
    fn push_line(&mut self, value: Value) {
        if let Ok(line) = serde_json::to_string(&sanitize(value)) {
            self.lines.push(line);
        }
        self.dirty = true;
        if self.lines.len() >= BUFFER_CAP {
            let _ = self.write_lines();
        }
    }

    fn write_lines(&mut self) -> io::Result<()> {
        let out: &mut dyn Write = match &mut self.out {
            Output::File(w) => w,
            Output::Writer(w) => w,
            Output::Buffer(b) => b,
        };
        let mut result = Ok(());
        for line in self.lines.drain(..) {
            if let Err(e) = writeln!(out, "{line}") {
                if result.is_ok() {
                    result = Err(e);
                }
            }
        }
        result
    }

    fn summary_rows(&mut self) {
        let mut rows = Vec::new();
        for (name, value) in &self.counters {
            rows.push(stamped(vec![
                ("t".to_string(), Value::String("counter".to_string())),
                ("name".to_string(), Value::String(name.clone())),
                ("value".to_string(), Value::UInt(*value)),
            ]));
        }
        for (name, value) in &self.gauges {
            rows.push(stamped(vec![
                ("t".to_string(), Value::String("gauge".to_string())),
                ("name".to_string(), Value::String(name.clone())),
                ("value".to_string(), Value::Float(*value)),
            ]));
        }
        for (name, hist) in &self.histograms {
            let mut cumulative = 0;
            let mut buckets: Vec<Value> = hist
                .bounds()
                .iter()
                .zip(hist.bucket_counts())
                .map(|(le, n)| {
                    cumulative += n;
                    Value::Object(vec![
                        ("le".to_string(), Value::Float(*le)),
                        ("count".to_string(), Value::UInt(cumulative)),
                    ])
                })
                .collect();
            buckets.push(Value::Object(vec![
                ("le".to_string(), Value::Null),
                ("count".to_string(), Value::UInt(hist.count())),
            ]));
            rows.push(stamped(vec![
                ("t".to_string(), Value::String("hist".to_string())),
                ("name".to_string(), Value::String(name.clone())),
                ("count".to_string(), Value::UInt(hist.count())),
                ("sum".to_string(), Value::Float(hist.sum())),
                ("buckets".to_string(), Value::Array(buckets)),
            ]));
        }
        for row in rows {
            if let Ok(line) = serde_json::to_string(&sanitize(row)) {
                self.lines.push(line);
            }
        }
    }
}

impl Recorder for JsonlSink {
    fn counter(&self, name: &str, delta: u64) {
        let mut state = self.lock();
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
        state.dirty = true;
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state.gauges.insert(name.to_string(), value);
        state.dirty = true;
    }

    fn observe(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_time)
            .observe(value);
        state.dirty = true;
    }

    fn event(&self, name: &str, data: Value) {
        let mut state = self.lock();
        let seq = state.seq;
        state.seq += 1;
        state.push_line(stamped(vec![
            ("t".to_string(), Value::String("event".to_string())),
            ("seq".to_string(), Value::UInt(seq)),
            ("name".to_string(), Value::String(name.to_string())),
            ("data".to_string(), data),
        ]));
    }

    fn flush(&self) {
        let _ = self.try_flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if self.lock().dirty {
            if let Err(e) = self.try_flush() {
                eprintln!("telemetry: final flush failed, records may be lost: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn lines(sink: &JsonlSink) -> Vec<Value> {
        let bytes = sink.take_output();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses as JSON"))
            .collect()
    }

    fn field<'a>(obj: &'a Value, key: &str) -> &'a Value {
        match obj {
            Value::Object(fields) => &fields.iter().find(|(k, _)| k == key).expect("field").1,
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn event_round_trips_through_json() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        tel.event(
            "window",
            &[
                ("window_index", Value::UInt(3)),
                ("reward", Value::Float(-0.25)),
                ("label", Value::String("msd".to_string())),
            ],
        );
        tel.flush();
        let rows = lines(&sink);
        assert_eq!(rows.len(), 1);
        assert_eq!(field(&rows[0], "t"), &Value::String("event".to_string()));
        assert_eq!(field(&rows[0], "seq"), &Value::UInt(0));
        let data = field(&rows[0], "data");
        assert_eq!(field(data, "window_index"), &Value::UInt(3));
        assert_eq!(field(data, "reward"), &Value::Float(-0.25));
        assert_eq!(field(data, "label"), &Value::String("msd".to_string()));
    }

    #[test]
    fn float_payloads_round_trip_bit_exactly() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        let awkward = 0.1 + 0.2; // 0.30000000000000004
        tel.event("e", &[("x", Value::Float(awkward))]);
        tel.flush();
        let rows = lines(&sink);
        match field(field(&rows[0], "data"), "x") {
            Value::Float(x) => assert_eq!(x.to_bits(), awkward.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_appear_as_summary_rows_on_flush() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        tel.counter("events", 2);
        tel.counter("events", 3);
        tel.gauge("sigma", 0.5);
        sink.set_buckets("loss", &[1.0, 2.0]);
        tel.observe("loss", 0.5);
        tel.observe("loss", 1.5);
        tel.observe("loss", 9.0);
        tel.flush();
        let rows = lines(&sink);
        assert_eq!(rows.len(), 3);
        let counter = &rows[0];
        assert_eq!(field(counter, "t"), &Value::String("counter".to_string()));
        assert_eq!(field(counter, "value"), &Value::UInt(5));
        let gauge = &rows[1];
        assert_eq!(field(gauge, "value"), &Value::Float(0.5));
        let hist = &rows[2];
        assert_eq!(field(hist, "count"), &Value::UInt(3));
        // Cumulative le buckets: <=1 holds one, <=2 holds two, +Inf all three.
        let buckets = match field(hist, "buckets") {
            Value::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(field(&buckets[0], "count"), &Value::UInt(1));
        assert_eq!(field(&buckets[1], "count"), &Value::UInt(2));
        assert_eq!(field(&buckets[2], "le"), &Value::Null);
        assert_eq!(field(&buckets[2], "count"), &Value::UInt(3));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        tel.event("e", &[("bad", Value::Float(f64::NAN))]);
        tel.gauge("g", f64::INFINITY);
        tel.flush();
        let rows = lines(&sink);
        assert_eq!(field(field(&rows[0], "data"), "bad"), &Value::Null);
        assert_eq!(field(&rows[1], "value"), &Value::Null);
    }

    #[test]
    fn file_backed_try_flush_persists_records() {
        let path = std::env::temp_dir().join("miras_telemetry_sink_flush_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let tel = Telemetry::new(sink.clone());
        tel.event("tick", &[("n", Value::UInt(1))]);
        sink.try_flush().expect("flush + fsync succeeds");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"tick\""), "{contents}");
        drop(tel);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_sequence_numbers_increase() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        for _ in 0..3 {
            tel.event("tick", &[]);
        }
        tel.flush();
        let rows = lines(&sink);
        let seqs: Vec<&Value> = rows.iter().map(|r| field(r, "seq")).collect();
        assert_eq!(seqs, [&Value::UInt(0), &Value::UInt(1), &Value::UInt(2)]);
    }
}
