//! Deterministic buffering recorder for parallel fan-out.
//!
//! When independent work items (e.g. the benchmark's scenario × algorithm
//! grid cells) run on worker threads that all want to record telemetry, the
//! interleaving of their records in a shared sink depends on scheduling. A
//! [`BufferedRecorder`] gives each work item a private, ordered capture of
//! everything it recorded; after the threads join, the captures are replayed
//! into the real sink in a deterministic order, making the final output
//! independent of how many workers ran.

use std::sync::Mutex;

use crate::{Recorder, Telemetry, Value};

/// One buffered telemetry record, in the order it was made.
#[derive(Debug, Clone, PartialEq)]
enum Record {
    Counter(String, u64),
    Gauge(String, f64),
    Observe(String, f64),
    Event(String, Value),
}

/// A [`Recorder`] that captures records in order instead of emitting them,
/// for later [`replay`](BufferedRecorder::replay) into a real sink.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use telemetry::{BufferedRecorder, JsonlSink, Telemetry};
///
/// let buf = Arc::new(BufferedRecorder::new());
/// let tel = Telemetry::new(buf.clone());
/// tel.counter("cell.work", 2);
/// tel.event("cell.done", &[("id", telemetry::Value::UInt(7))]);
///
/// let sink = JsonlSink::in_memory();
/// buf.replay(&Telemetry::new(sink.clone()));
/// sink.try_flush().unwrap();
/// let out = String::from_utf8(sink.take_output()).unwrap();
/// assert!(out.contains("cell.done"));
/// ```
#[derive(Debug, Default)]
pub struct BufferedRecorder {
    records: Mutex<Vec<Record>>,
}

impl BufferedRecorder {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BufferedRecorder::default()
    }

    /// Number of records captured so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the buffer lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("buffer poisoned").len()
    }

    /// Whether nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays every captured record, in capture order, into `target`.
    /// The buffer is left empty.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the buffer lock.
    pub fn replay(&self, target: &Telemetry) {
        let records = std::mem::take(&mut *self.records.lock().expect("buffer poisoned"));
        for record in records {
            match record {
                Record::Counter(name, delta) => target.counter(&name, delta),
                Record::Gauge(name, value) => target.gauge(&name, value),
                Record::Observe(name, value) => target.observe(&name, value),
                Record::Event(name, data) => target.event_value(&name, data),
            }
        }
    }

    fn push(&self, record: Record) {
        self.records.lock().expect("buffer poisoned").push(record);
    }
}

impl Recorder for BufferedRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.push(Record::Counter(name.to_string(), delta));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.push(Record::Gauge(name.to_string(), value));
    }

    fn observe(&self, name: &str, value: f64) {
        self.push(Record::Observe(name.to_string(), value));
    }

    fn event(&self, name: &str, data: Value) {
        self.push(Record::Event(name.to_string(), data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonlSink;
    use std::sync::Arc;

    #[test]
    fn captures_and_replays_in_order() {
        let buf = Arc::new(BufferedRecorder::new());
        let tel = Telemetry::new(buf.clone());
        tel.counter("a", 1);
        tel.gauge("b", 2.0);
        tel.observe("c", 3.0);
        tel.event("d", &[("k", Value::Int(4))]);
        assert_eq!(buf.len(), 4);

        let sink = JsonlSink::in_memory();
        buf.replay(&Telemetry::new(sink.clone()));
        assert!(buf.is_empty());
        sink.try_flush().unwrap();
        let out = String::from_utf8(sink.take_output()).unwrap();
        assert!(out.contains("\"d\""), "event missing from {out}");
        assert!(out.contains("\"a\""), "counter missing from {out}");
    }

    #[test]
    fn replay_into_two_sinks_is_identical() {
        // The same buffered capture replayed twice produces byte-identical
        // event streams — the property the parallel grid relies on.
        let buf = Arc::new(BufferedRecorder::new());
        let tel = Telemetry::new(buf.clone());
        for i in 0..10 {
            tel.event("tick", &[("i", Value::UInt(i))]);
        }
        let render = |records: &Arc<BufferedRecorder>| {
            let sink = JsonlSink::in_memory();
            records.replay(&Telemetry::new(sink.clone()));
            sink.try_flush().unwrap();
            String::from_utf8(sink.take_output()).unwrap()
        };
        // Refill after the first (draining) replay.
        let first = render(&buf);
        let tel = Telemetry::new(buf.clone());
        for i in 0..10 {
            tel.event("tick", &[("i", Value::UInt(i))]);
        }
        let second = render(&buf);
        let events = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains("\"t\":\"event\""))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(events(&first), events(&second));
    }
}
