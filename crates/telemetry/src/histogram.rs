//! Fixed-bucket histograms (Prometheus-style `le` upper bounds).

/// A histogram over fixed upper-bound buckets plus an implicit `+Inf`
/// overflow bucket, tracking total count and sum alongside.
///
/// Buckets are *non-cumulative* here (each observation lands in exactly one
/// bucket); the JSONL sink emits the conventional cumulative `le` form.
///
/// # Examples
///
/// ```
/// use telemetry::Histogram;
///
/// let mut h = Histogram::new(&[0.1, 1.0, 10.0]);
/// h.observe(0.1); // boundary value lands in its own bucket (`le` semantics)
/// h.observe(5.0);
/// h.observe(100.0); // overflow
/// assert_eq!(h.bucket_counts(), &[1, 0, 1, 1]);
/// assert_eq!(h.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

/// Default bucket bounds, in seconds: span timers across the workspace range
/// from sub-microsecond GEMM calls to multi-second training iterations.
pub const DEFAULT_TIME_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

impl Histogram {
    /// Creates a histogram with the given finite, strictly increasing upper
    /// bounds. An overflow (`+Inf`) bucket is always appended.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite and strictly increasing.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// A histogram over [`DEFAULT_TIME_BOUNDS`].
    #[must_use]
    pub fn default_time() -> Self {
        Histogram::new(DEFAULT_TIME_BOUNDS)
    }

    /// Records one observation. A value equal to a bound lands in that
    /// bound's bucket (`value <= bound`, Prometheus `le` semantics); `NaN`
    /// counts into the overflow bucket so totals stay consistent.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Upper bounds, excluding the implicit `+Inf`.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the overflow
    /// bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value, or `None` before the first observation.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_use_le_semantics() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn just_above_boundary_falls_into_next_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0 + f64::EPSILON * 2.0);
        assert_eq!(h.bucket_counts(), &[0, 1, 0]);
    }

    #[test]
    fn below_first_bound_and_overflow() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(-5.0);
        h.observe(10.000_001);
        assert_eq!(h.bucket_counts(), &[1, 1]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_bounds_means_single_overflow_bucket() {
        let mut h = Histogram::new(&[]);
        h.observe(3.0);
        h.observe(-3.0);
        assert_eq!(h.bucket_counts(), &[2]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn nan_lands_in_overflow() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.bucket_counts(), &[0, 1]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn mean_tracks_sum_over_count() {
        let mut h = Histogram::default_time();
        assert_eq!(h.mean(), None);
        h.observe(1.0);
        h.observe(3.0);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_bound_panics() {
        let _ = Histogram::new(&[1.0, f64::INFINITY]);
    }
}
