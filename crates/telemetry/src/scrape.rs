//! In-memory aggregating recorder rendered in the Prometheus text
//! exposition format.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{Histogram, Recorder, Value};

/// A [`Recorder`] that keeps live aggregates in memory and renders them as
/// a plaintext `/metrics`-style page on demand.
///
/// The serving loop attaches one of these (usually fanned out alongside a
/// [`JsonlSink`](crate::JsonlSink) via
/// [`FanoutRecorder`](crate::FanoutRecorder)) and hands
/// [`ScrapeRecorder::render`] to its scrape endpoint. Events are not
/// retained — only counted (`telemetry_events_total`) — because the scrape
/// surface is for aggregates; the JSONL sink is the durable event log.
///
/// Metric names have `.` and `-` rewritten to `_` (Prometheus name
/// charset); histograms render in the standard `_bucket`/`_sum`/`_count`
/// triplet with cumulative `le` buckets.
///
/// # Examples
///
/// ```
/// use telemetry::{ScrapeRecorder, Telemetry};
///
/// let scrape = ScrapeRecorder::new();
/// let tel = Telemetry::new(scrape.clone());
/// tel.counter("serve.decisions", 3);
/// tel.gauge("serve.policy_version", 7.0);
/// let page = scrape.render();
/// assert!(page.contains("serve_decisions 3"));
/// assert!(page.contains("serve_policy_version 7"));
/// ```
pub struct ScrapeRecorder {
    state: Mutex<ScrapeState>,
}

#[derive(Default)]
struct ScrapeState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    events: u64,
}

impl ScrapeRecorder {
    /// Creates an empty scrape surface.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ScrapeRecorder {
            state: Mutex::new(ScrapeState::default()),
        })
    }

    /// Overrides the histogram bucket bounds for `name`; must be called
    /// before the first observation of that histogram (later calls are
    /// ignored, mirroring [`JsonlSink::set_buckets`](crate::JsonlSink::set_buckets)).
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        let mut state = self.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Renders the current aggregates as a Prometheus text-format page.
    ///
    /// Output is deterministic for a given recorder state (sorted by metric
    /// name). Floats render via `{:?}`, which round-trips `f64` exactly.
    #[must_use]
    pub fn render(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for (name, value) in &state.counters {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(&format!(
            "# TYPE telemetry_events_total counter\ntelemetry_events_total {}\n",
            state.events
        ));
        for (name, value) in &state.gauges {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num(*value)));
        }
        for (name, hist) in &state.histograms {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0;
            for (le, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    num(*le)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                hist.count(),
                num(hist.sum()),
                hist.count()
            ));
        }
        out
    }

    fn lock(&self) -> MutexGuard<'_, ScrapeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Rewrites a dotted metric name into the Prometheus charset.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Prometheus number rendering: finite floats via `{:?}` (exact), the rest
/// as the spec's `NaN`/`+Inf`/`-Inf` spellings.
fn num(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value:?}")
    }
}

impl Recorder for ScrapeRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut state = self.lock();
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_time)
            .observe(value);
    }

    fn event(&self, _name: &str, _data: Value) {
        self.lock().events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn renders_all_metric_kinds() {
        let scrape = ScrapeRecorder::new();
        let tel = Telemetry::new(scrape.clone());
        tel.counter("serve.decisions", 2);
        tel.counter("serve.decisions", 1);
        tel.gauge("serve.policy_version", 3.0);
        scrape.set_buckets("serve.latency", &[0.001, 0.01]);
        tel.observe("serve.latency", 0.0005);
        tel.observe("serve.latency", 0.5);
        tel.event("decision", &[]);
        let page = scrape.render();
        assert!(page.contains("# TYPE serve_decisions counter\nserve_decisions 3\n"));
        assert!(page.contains("serve_policy_version 3.0\n"));
        assert!(page.contains("serve_latency_bucket{le=\"0.001\"} 1\n"));
        assert!(page.contains("serve_latency_bucket{le=\"+Inf\"} 2\n"));
        assert!(page.contains("serve_latency_count 2\n"));
        assert!(page.contains("telemetry_events_total 1\n"));
    }

    #[test]
    fn names_are_sanitized_to_the_prometheus_charset() {
        assert_eq!(
            sanitize_name("desim.wheel-cascades"),
            "desim_wheel_cascades"
        );
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn render_is_deterministic() {
        let scrape = ScrapeRecorder::new();
        let tel = Telemetry::new(scrape.clone());
        tel.gauge("b", 2.0);
        tel.gauge("a", 1.0);
        tel.counter("z", 9);
        assert_eq!(scrape.render(), scrape.render());
        let a = scrape.render().find("\na 1.0").unwrap();
        let b = scrape.render().find("\nb 2.0").unwrap();
        assert!(a < b, "gauges render sorted by name");
    }

    #[test]
    fn non_finite_values_render_per_spec() {
        let scrape = ScrapeRecorder::new();
        let tel = Telemetry::new(scrape.clone());
        tel.gauge("bad", f64::NAN);
        tel.gauge("hot", f64::INFINITY);
        let page = scrape.render();
        assert!(page.contains("bad NaN\n"));
        assert!(page.contains("hot +Inf\n"));
    }
}
