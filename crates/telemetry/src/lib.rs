//! Unified observability layer for the MIRAS workspace.
//!
//! Every layer of the stack — the discrete-event engine, the cluster
//! emulator, the neural-network core, the DDPG learner and the Algorithm 2
//! trainer — reports what it is doing through one small vocabulary:
//!
//! * **counters** — monotone totals (`desim.events_processed`,
//!   `ddpg.train_steps`, `refine.lend_triggers`);
//! * **gauges** — last-value samples (`ddpg.sigma`, `desim.pending`);
//! * **histograms** — fixed-bucket distributions, used for span timings and
//!   loss distributions;
//! * **span timers** — RAII guards that observe their elapsed wall time into
//!   a histogram on drop;
//! * **structured events** — named JSON records (one per decision window,
//!   per training epoch, per Algorithm 2 iteration) that figure binaries
//!   replay to produce their tables.
//!
//! All of it funnels through the [`Recorder`] trait. Call sites hold a
//! cheap, cloneable [`Telemetry`] handle; the default handle is disabled
//! ([`Telemetry::noop`]) and every recording method then reduces to a single
//! branch on an `Option` — no allocation, no formatting, no clock reads.
//! Instrumentation is **deterministic-neutral** by construction: recorders
//! only observe values the computation already produced, never feed anything
//! back, and never touch an RNG, so results are bit-identical with recording
//! on or off.
//!
//! The one bundled production recorder is [`JsonlSink`], which buffers
//! events as JSON Lines and emits aggregate counter/gauge/histogram rows on
//! [`Telemetry::flush`].

#![warn(missing_docs)]

mod buffer;
mod histogram;
mod scrape;
mod sink;

pub use buffer::BufferedRecorder;
pub use histogram::Histogram;
pub use scrape::ScrapeRecorder;
pub use sink::JsonlSink;

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Re-export of the vendored dynamic value type used for event fields.
pub use serde::value::Value;

/// Version of the telemetry record schema. Stamped as a `schema_version`
/// field on every JSONL record [`JsonlSink`] writes and validated by
/// `telemetry_check`, so the file sink and the scrape endpoint share one
/// documented, versioned schema. Bump whenever a record shape changes
/// incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Sink interface implemented by telemetry back-ends.
///
/// Implementations must be thread-safe: the nn thread pool and sharded DDPG
/// gradient workers may record concurrently.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotone counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records `value` into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Records a structured event with the given payload.
    fn event(&self, name: &str, data: Value);

    /// Writes out any buffered state. Called at the end of a run.
    fn flush(&self) {}
}

/// A recorder that discards everything.
///
/// [`Telemetry::noop`] does not actually allocate one of these — a disabled
/// handle holds no recorder at all — but the type is useful where an
/// `Arc<dyn Recorder>` is required unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
    fn event(&self, _name: &str, _data: Value) {}
}

/// Cheap cloneable handle through which instrumented code records.
///
/// A disabled handle (`Telemetry::noop()`, also the `Default`) carries no
/// recorder; every method then early-returns after one branch. Use
/// [`Telemetry::is_enabled`] to guard construction of expensive payloads
/// (e.g. serialising a whole metrics struct, or walking network weights to
/// measure target divergence).
///
/// # Examples
///
/// ```
/// use telemetry::{JsonlSink, Telemetry};
///
/// let noop = Telemetry::noop();
/// noop.counter("events", 3); // one branch, nothing recorded
///
/// let sink = JsonlSink::in_memory();
/// let tel = Telemetry::new(sink.clone());
/// tel.counter("events", 3);
/// tel.flush();
/// let text = String::from_utf8(sink.take_output()).unwrap();
/// assert!(text.contains("\"events\""));
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
}

impl Telemetry {
    /// A disabled handle: all recording methods are single-branch no-ops.
    #[must_use]
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// Wraps a recorder.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry {
            inner: Some(recorder),
        }
    }

    /// Whether a recorder is attached. Guard expensive payload construction
    /// with this; the recording methods already guard themselves.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a monotone counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter(name, delta);
        }
    }

    /// Sets a gauge (last write wins).
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge(name, value);
        }
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    /// Records a structured event from explicit fields.
    ///
    /// Fields are only materialised into a [`Value`] when enabled, but the
    /// caller still pays for building the slice; wrap genuinely expensive
    /// field computation in [`Telemetry::is_enabled`].
    #[inline]
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        if let Some(r) = &self.inner {
            let data = Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            );
            r.event(name, data);
        }
    }

    /// Records a structured event from an already-built [`Value`] payload
    /// (the replay path of [`BufferedRecorder`]; prefer
    /// [`Telemetry::event`] / [`Telemetry::event_struct`] at call sites).
    #[inline]
    pub fn event_value(&self, name: &str, data: Value) {
        if let Some(r) = &self.inner {
            r.event(name, data);
        }
    }

    /// Records a structured event whose payload is any `Serialize` type
    /// (e.g. a whole `WindowMetrics` or `IterationReport`).
    ///
    /// Serialisation only happens when a recorder is attached. Payloads that
    /// fail to serialise are dropped silently — telemetry must never abort
    /// the computation it observes.
    #[inline]
    pub fn event_struct<T: serde::Serialize>(&self, name: &str, payload: &T) {
        if let Some(r) = &self.inner {
            if let Ok(data) = serde::value::to_value(payload) {
                r.event(name, data);
            }
        }
    }

    /// Starts a span timer that observes its elapsed seconds into the
    /// histogram `name` when dropped. Disabled handles never read the clock.
    #[inline]
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            telemetry: self,
            name,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Flushes the underlying recorder, if any.
    pub fn flush(&self) {
        if let Some(r) = &self.inner {
            r.flush();
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII wall-clock timer produced by [`Telemetry::span`].
///
/// Observes `elapsed_secs` into the named histogram on drop. Timings are
/// observability-only — they never influence simulation or training state —
/// so spans cannot break determinism even though wall time varies run to
/// run.
#[derive(Debug)]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.telemetry
                .observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// A [`Recorder`] that forwards every call to several recorders.
///
/// Lets one instrumented computation feed both a durable [`JsonlSink`] and
/// a live [`ScrapeRecorder`] (the pattern `miras-serve` uses: decisions are
/// logged to disk *and* visible on the metrics endpoint).
pub struct FanoutRecorder {
    targets: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Builds a fanout over the given recorders; calls are forwarded in
    /// order.
    #[must_use]
    pub fn new(targets: Vec<Arc<dyn Recorder>>) -> Arc<Self> {
        Arc::new(FanoutRecorder { targets })
    }
}

impl Recorder for FanoutRecorder {
    fn counter(&self, name: &str, delta: u64) {
        for t in &self.targets {
            t.counter(name, delta);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        for t in &self.targets {
            t.gauge(name, value);
        }
    }

    fn observe(&self, name: &str, value: f64) {
        for t in &self.targets {
            t.observe(name, value);
        }
    }

    fn event(&self, name: &str, data: Value) {
        for t in &self.targets {
            t.event(name, data.clone());
        }
    }

    fn flush(&self) {
        for t in &self.targets {
            t.flush();
        }
    }
}

/// Replaces non-finite floats with `Null` anywhere in a value tree.
///
/// The vendored `serde_json` (like real JSON) rejects `NaN`/`±inf`;
/// diagnostics containing them (e.g. a diverged loss) must still serialise.
#[must_use]
pub fn sanitize(value: Value) -> Value {
    match value {
        Value::Float(f) if !f.is_finite() => Value::Null,
        Value::Array(items) => Value::Array(items.into_iter().map(sanitize).collect()),
        Value::Object(fields) => {
            Value::Object(fields.into_iter().map(|(k, v)| (k, sanitize(v))).collect())
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_inert() {
        let t = Telemetry::noop();
        assert!(!t.is_enabled());
        t.counter("c", 1);
        t.gauge("g", 1.0);
        t.observe("h", 1.0);
        t.event("e", &[("x", Value::UInt(1))]);
        t.flush();
        let span = t.span("s");
        assert!(
            span.start.is_none(),
            "disabled span must not read the clock"
        );
    }

    #[test]
    fn default_is_noop() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn fanout_reaches_every_target() {
        let sink = JsonlSink::in_memory();
        let scrape = ScrapeRecorder::new();
        let tel = Telemetry::new(FanoutRecorder::new(vec![sink.clone(), scrape.clone()]));
        tel.counter("c", 4);
        tel.event("e", &[("x", Value::UInt(1))]);
        tel.flush();
        let text = String::from_utf8(sink.take_output()).unwrap();
        assert!(text.contains("\"c\""), "{text}");
        assert!(text.contains("\"e\""), "{text}");
        assert!(scrape.render().contains("c 4\n"));
    }

    #[test]
    fn every_jsonl_record_is_schema_stamped() {
        let sink = JsonlSink::in_memory();
        let tel = Telemetry::new(sink.clone());
        tel.event("e", &[]);
        tel.counter("c", 1);
        tel.gauge("g", 0.5);
        tel.observe("h", 0.25);
        tel.flush();
        let text = String::from_utf8(sink.take_output()).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(
                row.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
                "unstamped record: {row}"
            );
        }
    }

    #[test]
    fn sanitize_strips_non_finite_floats() {
        let v = Value::Object(vec![
            ("ok".to_string(), Value::Float(1.5)),
            ("nan".to_string(), Value::Float(f64::NAN)),
            (
                "nested".to_string(),
                Value::Array(vec![Value::Float(f64::INFINITY), Value::Int(-2)]),
            ),
        ]);
        let s = sanitize(v);
        assert_eq!(
            s,
            Value::Object(vec![
                ("ok".to_string(), Value::Float(1.5)),
                ("nan".to_string(), Value::Null),
                (
                    "nested".to_string(),
                    Value::Array(vec![Value::Null, Value::Int(-2)]),
                ),
            ])
        );
    }
}
