//! Integration tests for every allocator against the real emulator, on both
//! ensembles, under burst and steady-state workloads.

use miras::prelude::*;

/// Runs an allocator for `steps` windows; returns (final WIP, completions).
fn drive(
    ensemble: Ensemble,
    seed: u64,
    burst: Option<BurstSpec>,
    steps: usize,
    allocator: &mut dyn Allocator,
) -> (usize, usize) {
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    if let Some(b) = burst {
        env.inject_burst(&b);
    }
    let mut prev: Option<WindowMetrics> = None;
    let mut completions = 0;
    let mut final_wip = 0;
    for step in 0..steps {
        let wip = env.state();
        let m = allocator.allocate(&Observation::new(&wip, prev.as_ref(), step));
        let total: usize = m.iter().sum();
        assert!(
            total <= allocator.consumer_budget(),
            "{} exceeded budget: {m:?}",
            allocator.name()
        );
        let out = env.step(&m);
        assert!(!out.metrics.constraint_violated, "{}", allocator.name());
        completions += out.metrics.completions.iter().sum::<usize>();
        final_wip = out.metrics.total_wip();
        prev = Some(out.metrics);
    }
    (final_wip, completions)
}

fn all_allocators(ensemble: &Ensemble) -> Vec<Box<dyn Allocator>> {
    let j = ensemble.num_task_types();
    let budget = ensemble.default_consumer_budget();
    vec![
        Box::new(DrsAllocator::new(ensemble, budget, 30.0)),
        Box::new(HeftAllocator::new(ensemble, budget)),
        Box::new(MonadAllocator::new(j, budget, 30.0)),
        Box::new(UniformAllocator::new(j, budget)),
        Box::new(WipProportionalAllocator::new(j, budget)),
    ]
}

#[test]
fn every_allocator_survives_msd_steady_state() {
    let ensemble = Ensemble::msd();
    for mut alloc in all_allocators(&ensemble) {
        let (wip, done) = drive(ensemble.clone(), 11, None, 20, alloc.as_mut());
        assert!(done > 0, "{} completed nothing", alloc.name());
        // Offered load fits in the budget; adaptive allocators must keep the
        // backlog bounded.
        assert!(wip < 500, "{} WIP exploded: {wip}", alloc.name());
    }
}

#[test]
fn every_allocator_survives_ligo_burst() {
    let ensemble = Ensemble::ligo();
    let burst = BurstSpec::new(vec![50, 50, 25, 15]);
    for mut alloc in all_allocators(&ensemble) {
        let (_, done) = drive(
            ensemble.clone(),
            13,
            Some(burst.clone()),
            30,
            alloc.as_mut(),
        );
        assert!(done > 0, "{} completed nothing under burst", alloc.name());
    }
}

#[test]
fn adaptive_allocators_beat_uniform_on_skewed_bursts() {
    // A burst hitting only Type1 (A → B → C): WIP-aware policies should
    // clear more work than the blind uniform split.
    let ensemble = Ensemble::msd();
    let burst = BurstSpec::new(vec![200, 0, 0]);
    let mut uniform = UniformAllocator::new(4, 14);
    let (u_wip, _) = drive(ensemble.clone(), 17, Some(burst.clone()), 20, &mut uniform);
    let mut monad = MonadAllocator::new(4, 14, 30.0);
    let (m_wip, _) = drive(ensemble.clone(), 17, Some(burst.clone()), 20, &mut monad);
    let mut prop = WipProportionalAllocator::new(4, 14);
    let (p_wip, _) = drive(ensemble, 17, Some(burst), 20, &mut prop);
    assert!(
        m_wip <= u_wip && p_wip <= u_wip,
        "monad {m_wip}, prop {p_wip}, uniform {u_wip}"
    );
}

#[test]
fn model_free_ddpg_trains_and_allocates() {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(19);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble.clone(), config));
    let mut policy =
        baselines::train_model_free(&mut env, 40, 20, DdpgConfig::small_test(19), None);
    let (_, done) = drive(
        ensemble,
        19,
        Some(BurstSpec::new(vec![30, 20, 30])),
        15,
        &mut policy,
    );
    assert!(done > 0);
}

#[test]
fn drs_respects_stability_on_both_ensembles() {
    for ensemble in [Ensemble::msd(), Ensemble::ligo()] {
        let budget = ensemble.default_consumer_budget();
        let mut drs = DrsAllocator::new(&ensemble, budget, 30.0);
        let alloc = drs.allocate(&Observation::first(&vec![0.0; ensemble.num_task_types()]));
        let lambda = drs.task_arrival_rates();
        for (j, ((&l, &m), t)) in lambda
            .iter()
            .zip(&alloc)
            .zip(ensemble.task_types())
            .enumerate()
        {
            if l > 0.0 {
                let mu = 1.0 / t.mean_service_secs;
                assert!(
                    m as f64 * mu > l,
                    "{} queue {j} unstable: m={m}, λ={l:.3}, μ={mu:.3}",
                    ensemble.name()
                );
            }
        }
    }
}
