//! End-to-end integration tests spanning all crates: the full MIRAS
//! pipeline against the emulated cluster.

use miras::prelude::*;

fn msd_env(seed: u64) -> ClusterEnvAdapter {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(seed);
    ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config))
}

/// A small-but-real training configuration (bigger than smoke_test, small
/// enough for CI).
fn ci_config(seed: u64) -> MirasConfig {
    let mut c = MirasConfig::msd_fast(seed);
    c.real_steps_per_iter = 120;
    c.rollouts_per_iter = 12;
    c.model_epochs = 15;
    c.ddpg = DdpgConfig::paper(32, seed);
    c
}

#[test]
fn full_pipeline_runs_and_improves_over_no_allocation() {
    let mut env = msd_env(0);
    let mut trainer = MirasTrainer::new(&env, ci_config(0));
    for _ in 0..3 {
        let _ = trainer.run_iteration(&mut env);
    }
    let agent = trainer.agent();

    // Evaluate the trained agent vs the do-nothing policy on identical
    // fresh environments (same seed → same arrivals).
    let run = |alloc: &dyn Fn(&[f64]) -> Vec<usize>| -> f64 {
        let ensemble = Ensemble::msd();
        let config = EnvConfig::for_ensemble(&ensemble).with_seed(123);
        let mut env = MicroserviceEnv::new(ensemble, config);
        let _ = env.reset();
        env.inject_burst(&BurstSpec::new(vec![60, 40, 60]));
        let mut total = 0.0;
        for _ in 0..15 {
            let m = alloc(&env.state());
            total += env.step(&m).reward;
        }
        total
    };
    let trained = run(&|s| agent.allocate(s));
    let nothing = run(&|_| vec![0, 0, 0, 0]);
    assert!(
        trained > nothing,
        "trained {trained} should beat doing nothing {nothing}"
    );
}

#[test]
fn training_reports_are_internally_consistent() {
    let mut env = msd_env(1);
    let config = ci_config(1);
    let steps = config.real_steps_per_iter;
    let eval = config.eval_steps;
    let mut trainer = MirasTrainer::new(&env, config);
    let r0 = trainer.run_iteration(&mut env);
    let r1 = trainer.run_iteration(&mut env);
    assert_eq!(r0.iteration, 0);
    assert_eq!(r1.iteration, 1);
    assert_eq!(r0.dataset_size, steps + eval);
    assert_eq!(r1.dataset_size, 2 * (steps + eval));
    assert!(r0.model_loss.is_finite() && r1.model_loss.is_finite());
    // The model should fit better with more data and more training.
    assert!(r1.model_loss < r0.model_loss * 5.0, "model diverged");
}

#[test]
fn agent_allocations_always_respect_budget() {
    let mut env = msd_env(2);
    let mut trainer = MirasTrainer::new(&env, ci_config(2));
    let _ = trainer.run_iteration(&mut env);
    let agent = trainer.agent();
    // Probe a grid of extreme states.
    for a in [0.0, 1.0, 10.0, 1000.0] {
        for b in [0.0, 7.0, 300.0] {
            let m = agent.allocate(&[a, b, a + b, a * b]);
            assert!(
                m.iter().sum::<usize>() <= agent.consumer_budget(),
                "violated at [{a}, {b}]"
            );
        }
    }
}

#[test]
fn model_predicts_burst_drainage_better_than_naive() {
    // Train the model half of MIRAS on random-action data, then check its
    // one-step predictions against fresh real transitions in the *burst*
    // regime, where WIP actually moves. It must beat the naive "WIP never
    // changes" predictor there. (In the near-zero steady state the naive
    // predictor is nearly unbeatable — that is exactly the boundary-noise
    // phenomenon the paper's §IV-C2 refinement addresses.)
    use rand::{Rng, SeedableRng};
    let mut env = msd_env(3);
    let config = ci_config(3);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let mut dataset = TransitionDataset::new(4);
    // 30 episodes: reset, inject a random burst, take 20 random-allocation
    // windows — covers the burst-drainage regime the probe below exercises.
    for _ in 0..30 {
        let _ = rl::Environment::reset(&mut env);
        let burst = BurstSpec::new(vec![
            rng.gen_range(0..160),
            rng.gen_range(0..110),
            rng.gen_range(0..160),
        ]);
        env.env_mut().inject_burst(&burst);
        for _ in 0..20 {
            let raw: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            let dist = rl::policy::project_to_simplex(&raw);
            let _ = rl::Environment::step(&mut env, &dist);
        }
        env.drain_into(&mut dataset);
    }
    let mut model = DynamicsModel::new(4, &config);
    let _ = model.train(&dataset, 150, 64);

    let ensemble = Ensemble::msd();
    let probe_config = EnvConfig::for_ensemble(&ensemble).with_seed(77);
    let mut probe_env = MicroserviceEnv::new(ensemble, probe_config);
    let _ = probe_env.reset();
    probe_env.inject_burst(&BurstSpec::new(vec![150, 100, 150]));
    let mut s = probe_env.state();
    let mut model_err = 0.0;
    let mut naive_err = 0.0;
    let mut n = 0;
    for _ in 0..25 {
        let action = [4usize, 4, 4, 2];
        let out = probe_env.step(&action);
        let action_f: Vec<f64> = action.iter().map(|&m| m as f64).collect();
        let pred = model.predict(&s, &action_f);
        for j in 0..4 {
            model_err += (pred[j] - out.state[j]).abs();
            naive_err += (s[j] - out.state[j]).abs();
            n += 1;
        }
        s = out.state;
    }
    model_err /= n as f64;
    naive_err /= n as f64;
    assert!(
        model_err < naive_err * 1.2,
        "model MAE {model_err:.2} vs naive {naive_err:.2}"
    );
}

#[test]
fn agent_serialization_round_trips_through_json() {
    let mut env = msd_env(4);
    let mut trainer = MirasTrainer::new(&env, ci_config(4));
    let _ = trainer.run_iteration(&mut env);
    let agent = trainer.agent();
    let json = serde_json::to_string(&agent).expect("serialise");
    let restored: MirasAgent = serde_json::from_str(&json).expect("deserialise");
    let state = [17.0, 3.0, 0.0, 9.0];
    assert_eq!(agent.allocate(&state), restored.allocate(&state));
}

#[test]
fn deterministic_training_under_fixed_seeds() {
    let run = |seed: u64| {
        let mut env = msd_env(seed);
        let mut trainer = MirasTrainer::new(&env, ci_config(seed));
        let r = trainer.run_iteration(&mut env);
        (r.model_loss.to_bits(), r.eval_return.to_bits())
    };
    assert_eq!(run(5), run(5));
}
