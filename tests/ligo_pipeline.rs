//! LIGO-specific integration tests: the 9-dimensional ensemble exercises
//! deeper DAGs (up to 7 stages), AND-joins, and the larger consumer budget.

use miras::prelude::*;

#[test]
fn ligo_cluster_processes_all_four_workflow_types() {
    let ensemble = Ensemble::ligo();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(1);
    let mut env = MicroserviceEnv::new(ensemble.clone(), config);
    let _ = env.reset();
    env.inject_burst(&BurstSpec::new(vec![5, 5, 5, 5]));
    // A generous static allocation processes everything.
    let mut per_type = [0usize; 4];
    for _ in 0..40 {
        let out = env.step(&[4, 4, 6, 3, 3, 3, 3, 3, 1]);
        for (acc, c) in per_type.iter_mut().zip(&out.metrics.completions) {
            *acc += c;
        }
    }
    for (i, &done) in per_type.iter().enumerate() {
        assert!(
            done >= 5,
            "workflow type {} ({}) completed only {done}",
            i,
            ensemble.workflow(WorkflowTypeId::new(i)).name
        );
    }
}

#[test]
fn ligo_inspiral_is_the_bottleneck_under_load() {
    // Inspiral (12 s mean service) is visited by every workflow; starving it
    // must back up its queue more than any other stage.
    let ensemble = Ensemble::ligo();
    let inspiral = ensemble.task_type_by_name("Inspiral").unwrap();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(2);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_burst(&BurstSpec::new(vec![30, 30, 20, 10]));
    // Ample capacity upstream but a single Inspiral consumer: the heavy
    // shared stage backs up more than any other.
    let mut last = Vec::new();
    for _ in 0..20 {
        last = env.step(&[5, 5, 1, 4, 3, 3, 3, 3, 2]).metrics.wip.clone();
    }
    let max = *last.iter().max().unwrap();
    assert_eq!(
        last[inspiral.index()],
        max,
        "expected Inspiral to dominate: {last:?}"
    );
}

#[test]
fn miras_smoke_trains_on_ligo() {
    let ensemble = Ensemble::ligo();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(3);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
    let mut trainer = MirasTrainer::new(&env, MirasConfig::smoke_test(3));
    let report = trainer.run_iteration(&mut env);
    assert!(report.model_loss.is_finite());
    let agent = trainer.agent();
    assert_eq!(agent.num_task_types(), 9);
    let m = agent.allocate(&[10.0; 9]);
    assert!(m.iter().sum::<usize>() <= 30);
}

#[test]
fn ligo_coire_deferral_is_possible() {
    // The paper observes MIRAS deferring Coire under large bursts. Verify the
    // emulator supports that strategy: zeroing Coire's consumers stalls only
    // Coire-terminated workflows, and restoring them later completes the
    // deferred work.
    let ensemble = Ensemble::ligo();
    let coire = ensemble.task_type_by_name("Coire").unwrap();
    let datafind_wf = ensemble.workflow_by_name("DataFind").unwrap();
    let config = EnvConfig::for_ensemble(&ensemble)
        .with_seed(4)
        .with_arrival_rates(vec![0.0; 4]);
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_burst(&BurstSpec::new(vec![10, 10, 0, 0]));

    // Phase 1: everything but Coire.
    let mut alloc = vec![4usize, 4, 6, 4, 2, 2, 4, 0, 0];
    let mut datafind_done = 0usize;
    let mut cat_done = 0usize;
    for _ in 0..25 {
        let out = env.step(&alloc);
        datafind_done += out.metrics.completions[datafind_wf.index()];
        cat_done += out.metrics.completions[1]; // CAT ends at Coire
    }
    assert_eq!(datafind_done, 10, "non-Coire workflows finish");
    assert_eq!(cat_done, 0, "CAT is stalled at the deferred Coire stage");
    let stalled = env.state()[coire.index()];
    assert!(stalled > 0.0, "Coire queue holds the deferred work");

    // Phase 2: turn back to Coire.
    alloc[coire.index()] = 6;
    for _ in 0..20 {
        let out = env.step(&alloc);
        cat_done += out.metrics.completions[1];
    }
    assert_eq!(
        cat_done, 10,
        "deferred CAT workflows complete after the turn"
    );
}
