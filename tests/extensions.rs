//! Integration tests for the beyond-the-paper features, exercised together
//! through the public API: CPU contention, failure injection, time-varying
//! workloads, model ensembles, and the twin critic.

use miras::microsim::{Cluster, SimConfig};
use miras::miras_core::EnsembleDynamics;
use miras::prelude::*;

#[test]
fn contention_and_failures_compose() {
    // A flaky, CPU-starved cluster still conserves and eventually finishes
    // all work.
    let config = SimConfig::new(5)
        .with_total_cores(3.0)
        .with_failure_rate(20.0);
    let mut cluster = Cluster::new(Ensemble::msd(), config);
    cluster.set_consumers(&[4, 4, 4, 2]);
    for i in 0..60 {
        cluster.submit(SimTime::from_secs(i), WorkflowTypeId::new((i % 3) as usize));
    }
    cluster.run_until(SimTime::from_secs(40_000));
    assert_eq!(cluster.drain_completions().len(), 60);
    assert!(cluster.consumer_failures() > 0);
}

#[test]
fn modulated_workload_drives_the_env() {
    // A ramping workload replayed through the environment produces more
    // arrivals late than early.
    let ensemble = Ensemble::msd();
    let process = ModulatedPoisson::new(
        vec![0.3, 0.3, 0.3],
        RatePattern::Ramp {
            from_factor: 0.1,
            to_factor: 3.0,
            duration: SimTime::from_secs(600),
        },
    );
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
    let trace = process.generate(SimTime::from_secs(600), &mut rng);

    let config = EnvConfig::for_ensemble(&ensemble)
        .with_seed(8)
        .with_arrival_rates(vec![0.0; 3]); // only the injected trace
    let mut env = MicroserviceEnv::new(ensemble, config);
    let _ = env.reset();
    env.inject_trace(&trace);
    let mut per_window = Vec::new();
    for _ in 0..20 {
        let out = env.step(&[4, 4, 4, 2]);
        per_window.push(out.metrics.arrivals.iter().sum::<usize>());
    }
    let early: usize = per_window[..5].iter().sum();
    let late: usize = per_window[15..].iter().sum();
    assert!(late > 2 * early, "ramp not visible: {per_window:?}");
}

#[test]
fn ensemble_model_learns_the_real_emulator() {
    // Train a 3-member ensemble on real transitions; its mean prediction
    // must beat the worst single member on held-out data.
    use rand::{Rng, SeedableRng};
    use rl::Environment;
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(9);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
    let mut dataset = TransitionDataset::new(4);
    let _ = env.reset();
    for step in 0..400 {
        if step % 25 == 0 {
            let _ = env.reset();
        }
        let raw: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
        let _ = env.step(&rl::policy::project_to_simplex(&raw));
    }
    env.drain_into(&mut dataset);

    let miras_config = MirasConfig::msd_fast(9);
    let mut models = EnsembleDynamics::new(4, &miras_config, 3);
    let _ = models.train(&dataset, 60, 64);

    // Held out: fresh transitions from a different seed.
    let config2 = EnvConfig::for_ensemble(&Ensemble::msd()).with_seed(10);
    let mut env2 = ClusterEnvAdapter::new(MicroserviceEnv::new(Ensemble::msd(), config2));
    let _ = env2.reset();
    for _ in 0..50 {
        let _ = env2.step(&[0.25, 0.25, 0.25, 0.25]);
    }
    let test = env2.take_transitions();

    type Predictor<'a> = &'a dyn Fn(&[f64], &[f64]) -> Vec<f64>;
    let mae = |f: Predictor| -> f64 {
        test.iter()
            .map(|t| {
                f(&t.state, &t.action)
                    .iter()
                    .zip(&t.next_state)
                    .map(|(p, y)| (p - y).abs())
                    .sum::<f64>()
                    / 4.0
            })
            .sum::<f64>()
            / test.len() as f64
    };
    let mean_mae = mae(&|s, a| models.predict_mean(s, a));
    let worst_member = (0..3)
        .map(|m| mae(&|s, a| models.predict_member(m, s, a)))
        .fold(0.0f64, f64::max);
    assert!(
        mean_mae <= worst_member + 1e-9,
        "ensemble mean {mean_mae} vs worst member {worst_member}"
    );
}

#[test]
fn twin_critic_miras_trains_end_to_end() {
    let ensemble = Ensemble::msd();
    let config = EnvConfig::for_ensemble(&ensemble).with_seed(11);
    let mut env = ClusterEnvAdapter::new(MicroserviceEnv::new(ensemble, config));
    let mut miras_config = MirasConfig::smoke_test(11);
    miras_config.ddpg.twin_critic = true;
    let mut trainer = MirasTrainer::new(&env, miras_config);
    let report = trainer.run_iteration(&mut env);
    assert!(report.model_loss.is_finite());
    let m = trainer.agent().allocate(&[4.0, 4.0, 4.0, 4.0]);
    assert!(m.iter().sum::<usize>() <= 14);
}

#[test]
fn latency_summary_from_live_completions() {
    let mut cluster = Cluster::new(
        Ensemble::msd(),
        SimConfig::new(12).with_startup_delay(SimTime::ZERO, SimTime::ZERO),
    );
    cluster.set_consumers(&[4, 4, 4, 2]);
    for i in 0..100 {
        cluster.submit(
            SimTime::from_secs(i / 3),
            WorkflowTypeId::new((i % 3) as usize),
        );
    }
    cluster.run_until(SimTime::from_secs(2_000));
    let completions = cluster.drain_completions();
    let summary = miras::microsim::LatencySummary::from_completions(&completions).unwrap();
    assert_eq!(summary.count, 100);
    assert!(summary.min > 0.0);
    assert!(summary.min <= summary.p50 && summary.p50 <= summary.p95);
    assert!(summary.p95 <= summary.p99 && summary.p99 <= summary.max);
}

#[test]
fn dot_export_of_builtin_ensembles_is_valid_dot() {
    for ensemble in [Ensemble::msd(), Ensemble::ligo()] {
        let dot = ensemble.to_dot();
        assert_eq!(
            dot.matches("digraph").count(),
            ensemble.num_workflow_types()
        );
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
